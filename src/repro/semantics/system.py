"""Executable semantics of a network: moves, posts, preds, invariants.

This is the TIOTS of Definition 4, in two flavours:

* **symbolic** — zones (DBMs) per discrete state, with ``post`` (discrete
  successor), ``delay_closure`` (time successor within invariants) and
  ``pred`` (discrete predecessor of a federation), the building blocks of
  the zone-graph explorer and the game solver;
* **concrete** — exact rational valuations with enabled-delay intervals,
  used by the test executor and the simulated implementations.

A **move** is a complete synchronization: one internal edge, an
emitter/receiver pair on a binary channel, or — on a *broadcast* channel —
one emitter plus every automaton with an enabled receiving edge (emission
never blocks on missing receivers).  Controllability follows the paper's
TIOGA convention: input channels are controllable; output, broadcast, and
internal moves are uncontrollable (internal edges carry an explicit flag).

Move enumeration comes in **three modes**, all served by one core
(:meth:`System.moves_from`):

``closed``
    The flat product: every synchronization completes inside the network
    (the game arena fed to the solvers).  Directions follow the channel
    kinds.
``open``
    Every sync half fires alone — the network models a component whose
    partners all live outside (``c?`` on an input channel is an input
    move, ``c!`` on an output channel an output move).  Sound only for
    single-automaton plants; kept as the legacy
    :meth:`System.open_moves_from`.
``partial``
    Composition against the network's *interface partition*
    (:meth:`repro.ta.model.Network.set_interface`): synchronizations the
    network can complete on internalised (non-boundary) channels do
    complete — becoming hidden, uncontrollable ``internal``-direction
    moves (the label is kept for debuggability) — while boundary
    channels stay open.  Boundary halves the network cannot
    pair fire alone exactly as in ``open`` mode; boundary channels it
    *can* pair synchronize in-model but keep their observable direction
    (the fully-closed-with-hiding case used by the relativized monitor).
    A boundary *broadcast* emission carries every enabled in-plant
    receiver with it (one observable output move), and the environment
    may trigger a broadcast reception: one input move per choice of one
    enabled receiving edge in every listening automaton.  For a
    single-automaton network partial mode degenerates to ``open``.
    Committed/urgent rules are identical in all three modes.

**Urgent locations** freeze delay exactly like committed ones (``d = 0``
is the only legal delay while any automaton sits in one) but, unlike
committed locations, grant no priority: every enabled move of the network
remains enabled.  Both flags are folded into :meth:`System.can_delay`, so
delay closure, maximal-delay computation, and the solvers' boundary
handling treat urgent states uniformly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from operator import itemgetter
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Tuple

from ..dbm import DBM, Federation, decode, INF
from ..expr.env import Declarations
from ..expr.eval import Context, EvalError, apply_assignments
from ..ta.model import Automaton, Edge, ModelError, Network
from .state import ConcreteState, SymbolicState, zero_valuation


def _project_nothing(vars: Tuple[int, ...]) -> Tuple[int, ...]:
    """Projection of a var state for expressions reading no variables."""
    return ()


#: Move-enumeration modes (see the module docstring).
CLOSED, OPEN, PARTIAL = "closed", "open", "partial"
MODES = (CLOSED, OPEN, PARTIAL)


@dataclass(frozen=True)
class Move:
    """One complete transition of the network (internal or a sync pair)."""

    label: str  # channel name, or "tau"
    direction: str  # 'input' | 'output' | 'internal'
    controllable: bool
    edges: Tuple[Tuple[int, Edge], ...]  # (automaton index, edge); emitter first

    @property
    def observable(self) -> bool:
        return self.direction in ("input", "output")

    def describe(self) -> str:
        kind = {"input": "?", "output": "!", "internal": ""}[self.direction]
        body = "; ".join(edge.describe() for _, edge in self.edges)
        return f"{self.label}{kind} [{body}]"

    def __repr__(self) -> str:
        return f"Move({self.label}, {self.direction})"


@dataclass(frozen=True)
class DelayInterval:
    """Delays ``d`` enabling a move: ``lo (<|<=) d (<|<=) hi`` (hi None = inf)."""

    lo: Fraction
    lo_strict: bool
    hi: Optional[Fraction]
    hi_strict: bool

    def is_empty(self) -> bool:
        if self.hi is None:
            return False
        if self.lo < self.hi:
            return False
        return self.lo > self.hi or self.lo_strict or self.hi_strict

    def contains(self, d: Fraction) -> bool:
        if d < self.lo or (d == self.lo and self.lo_strict):
            return False
        if self.hi is not None and (d > self.hi or (d == self.hi and self.hi_strict)):
            return False
        return True

    def pick(self) -> Fraction:
        """A representative delay (earliest if closed, else a midpoint)."""
        if not self.lo_strict:
            return self.lo
        if self.hi is None:
            return self.lo + 1
        return (self.lo + self.hi) / 2


class System:
    """Semantic wrapper around a prepared :class:`Network`."""

    def __init__(self, network: Network):
        if not network._prepared:
            network.prepare()
        self.network = network
        self.decls: Declarations = network.decls
        self.dim = network.dim
        self.automata: List[Automaton] = network.automata
        self._proc_index: Dict[str, int] = {
            a.name: i for i, a in enumerate(self.automata)
        }
        # Memoization of per-discrete-state computations: the solver asks
        # for the same invariant zones, move lists, and guard constraints
        # thousands of times during the backward fixpoint.  Everything
        # below is a pure function of the (frozen, prepared) network, so
        # the cache bundle is stored *on the network* and shared by every
        # System wrapping it — workloads that build many Systems of the
        # same model (the differential harness, benchmark rounds) start
        # warm instead of re-deriving tables and re-evaluating guards.
        shared = getattr(network, "_semantics_caches", None)
        if shared is None:
            shared = network._semantics_caches = {
                "inv": {},
                "inv_cons": {},
                "moves": {},
                "guard": {},
                "int_guard": {},
                "inv_int": {},
                "resets": {},
                "assign": {},
                "delay": {},
                "ctx": {},
                "edge_int_slots": {},
                "guard_slots": {},
                "locs_inv_slots": {},
                "moves_slots": {},
            }
        self._inv_cache: Dict[tuple, DBM] = shared["inv"]
        self._inv_cons_cache: Dict[tuple, list] = shared["inv_cons"]
        self._moves_cache: Dict[tuple, List["Move"]] = shared["moves"]
        self._guard_cache: Dict[tuple, list] = shared["guard"]
        # Guard/invariant caches are keyed by the *projection* of the
        # variable state onto the slots the expressions actually read —
        # a guard over one counter is evaluated once per value of that
        # counter, not once per global var state.  Read-slot sets are
        # derived syntactically (names_in); array reads conservatively
        # cover the whole array since indices may be dynamic.
        self._int_guard_cache: Dict[tuple, bool] = shared["int_guard"]
        self._inv_int_cache: Dict[tuple, bool] = shared["inv_int"]
        self._resets_cache: Dict[
            Tuple[int, ...], Tuple[Tuple[int, int], ...]
        ] = shared["resets"]
        self._assign_cache: Dict[tuple, tuple] = shared["assign"]
        self._delay_cache: Dict[tuple, DBM] = shared["delay"]
        self._ctx_cache: Dict[Tuple[int, ...], Context] = shared["ctx"]
        self._edge_int_slots: Dict[int, object] = shared["edge_int_slots"]
        self._guard_slots: Dict[Tuple[int, ...], object] = shared["guard_slots"]
        self._locs_inv_slots: Dict[Tuple[int, ...], tuple] = shared[
            "locs_inv_slots"
        ]
        self._moves_slots: Dict[Tuple[int, ...], object] = shared["moves_slots"]
        # Per automaton: location index -> internal edges.  Sync edges are
        # double-indexed channel -> automaton -> source location, so move
        # enumeration only ever touches edges leaving the current
        # locations instead of filtering every edge of the channel.
        tables = getattr(network, "_edge_tables", None)
        if tables is None:
            internal: List[Dict[int, List[Edge]]] = []
            emit: Dict[str, Dict[int, Dict[int, List[Edge]]]] = {}
            recv: Dict[str, Dict[int, Dict[int, List[Edge]]]] = {}
            for idx, automaton in enumerate(self.automata):
                per_loc: Dict[int, List[Edge]] = {}
                for edge in automaton.edges:
                    src = automaton.location_index(edge.source)
                    if edge.sync is None:
                        per_loc.setdefault(src, []).append(edge)
                    else:
                        channel, bang = edge.sync
                        table = emit if bang == "!" else recv
                        table.setdefault(channel, {}).setdefault(
                            idx, {}
                        ).setdefault(src, []).append(edge)
                internal.append(per_loc)
            tables = network._edge_tables = (internal, emit, recv)
        self._internal, self._emit, self._recv = tables

    # ------------------------------------------------------------------
    # Contexts and invariants
    # ------------------------------------------------------------------

    def ctx(self, vars: Tuple[int, ...]) -> Context:
        cached = self._ctx_cache.get(vars)
        if cached is None:
            cached = self._ctx_cache[vars] = Context(self.decls, vars)
        return cached

    def query_ctx(self, locs: Tuple[int, ...], vars: Tuple[int, ...]) -> Context:
        """A context where dotted location tests (``IUT.Bright``) work."""

        def location_test(proc: str, loc: str) -> bool:
            a_idx = self._proc_index.get(proc)
            if a_idx is None:
                raise EvalError(f"unknown process {proc!r}")
            automaton = self.automata[a_idx]
            if loc not in automaton.locations:
                raise EvalError(f"unknown location {proc}.{loc}")
            return locs[a_idx] == automaton.location_index(loc)

        return Context(self.decls, vars, location_test)

    def _slots_of(self, exprs) -> Tuple[int, ...]:
        """Variable slots an expression list reads (arrays whole)."""
        from ..expr.ast import names_in

        slots = set()
        for expr in exprs:
            for name in names_in(expr):
                var = self.decls.int_vars.get(name)
                if var is not None:
                    slots.add(var.slot)
                    continue
                arr = self.decls.arrays.get(name)
                if arr is not None:
                    slots.update(range(arr.offset, arr.offset + arr.size))
        return tuple(sorted(slots))

    def _projector(self, exprs):
        """A fast callable projecting a var state onto what ``exprs`` read."""
        slots = self._slots_of(exprs)
        if not slots:
            return _project_nothing
        if len(slots) == 1:
            return itemgetter(slots[0])
        return itemgetter(*slots)

    def _inv_projectors(self, locs: Tuple[int, ...]):
        """Var projectors of the invariants at ``locs``: (int, clock part)."""
        cached = self._locs_inv_slots.get(locs)
        if cached is None:
            int_exprs: list = []
            clock_exprs: list = []
            for a_idx, automaton in enumerate(self.automata):
                split = automaton.location_list[locs[a_idx]].inv_split
                int_exprs.extend(split.int_atoms)
                clock_exprs.extend(atom.rhs for atom in split.clock_atoms)
            cached = (self._projector(int_exprs), self._projector(clock_exprs))
            self._locs_inv_slots[locs] = cached
        return cached

    def invariant_int_ok(self, locs: Tuple[int, ...], vars: Tuple[int, ...]) -> bool:
        key = (locs, self._inv_projectors(locs)[0](vars))
        cached = self._inv_int_cache.get(key)
        if cached is None:
            ctx = self.ctx(vars)
            cached = all(
                automaton.location_list[locs[a_idx]].inv_split.int_holds(ctx)
                for a_idx, automaton in enumerate(self.automata)
            )
            self._inv_int_cache[key] = cached
        return cached

    def _edge_int_ok(self, edge: Edge, vars: Tuple[int, ...], ctx: Context) -> bool:
        """Memoized integer-guard verdict of one edge in a var state."""
        if not edge.guard_split.int_atoms:
            return True
        project = self._edge_int_slots.get(edge.index)
        if project is None:
            project = self._projector(edge.guard_split.int_atoms)
            self._edge_int_slots[edge.index] = project
        key = (edge.index, project(vars))
        cached = self._int_guard_cache.get(key)
        if cached is None:
            cached = edge.guard_split.int_holds(ctx)
            self._int_guard_cache[key] = cached
        return cached

    def invariant_constraints(
        self, locs: Tuple[int, ...], vars: Tuple[int, ...]
    ) -> list:
        """Encoded clock constraints of the invariants at a discrete state.

        Intersecting a canonical zone with these via incremental
        tightening is much cheaper than a full closure against the
        invariant *zone* — invariants carry only a handful of bounds.
        """
        key = (locs, self._inv_projectors(locs)[1](vars))
        cached = self._inv_cons_cache.get(key)
        if cached is None:
            ctx = self.ctx(vars)
            cached = []
            for a_idx, automaton in enumerate(self.automata):
                loc = automaton.location_list[locs[a_idx]]
                cached.extend(loc.inv_split.clock_constraints(ctx))
            self._inv_cons_cache[key] = cached
        return cached

    def invariant_zone(self, locs: Tuple[int, ...], vars: Tuple[int, ...]) -> DBM:
        key = (locs, self._inv_projectors(locs)[1](vars))
        cached = self._inv_cache.get(key)
        if cached is not None:
            return cached
        zone = DBM.universal(self.dim).constrained(
            self.invariant_constraints(locs, vars)
        )
        self._inv_cache[key] = zone
        return zone

    def can_delay(self, locs: Tuple[int, ...]) -> bool:
        for a_idx, automaton in enumerate(self.automata):
            loc = automaton.location_list[locs[a_idx]]
            if loc.committed or loc.urgent:
                return False
        return True

    def has_committed(self, locs: Tuple[int, ...]) -> bool:
        """True iff some automaton is in a committed location."""
        for a_idx, automaton in enumerate(self.automata):
            if automaton.location_list[locs[a_idx]].committed:
                return True
        return False

    def has_urgent(self, locs: Tuple[int, ...]) -> bool:
        """True iff some automaton is in an urgent location."""
        for a_idx, automaton in enumerate(self.automata):
            if automaton.location_list[locs[a_idx]].urgent:
                return True
        return False


    # ------------------------------------------------------------------
    # Move enumeration
    # ------------------------------------------------------------------

    def _moves_read_slots(self, locs: Tuple[int, ...]) -> Tuple[int, ...]:
        """Union of int-guard read slots over every edge leaving ``locs``."""
        cached = self._moves_slots.get(locs)
        if cached is None:
            exprs: list = []
            for a_idx, per_loc in enumerate(self._internal):
                for edge in per_loc.get(locs[a_idx], ()):
                    exprs.extend(edge.guard_split.int_atoms)
            for table in (self._emit, self._recv):
                for per_automaton in table.values():
                    for a_idx, by_loc in per_automaton.items():
                        for edge in by_loc.get(locs[a_idx], ()):
                            exprs.extend(edge.guard_split.int_atoms)
            cached = self._projector(exprs)
            self._moves_slots[locs] = cached
        return cached

    def moves_from(
        self,
        locs: Tuple[int, ...],
        vars: Tuple[int, ...],
        mode: str = CLOSED,
    ) -> List[Move]:
        """All moves whose *integer* guards hold (clock parts are zones).

        ``mode`` selects the enumeration semantics — ``closed`` (the flat
        product), ``open`` (every sync half alone), or ``partial``
        (composition against the network's interface partition); see the
        module docstring.  Results are memoized per (mode, locations,
        read-slot projection of the variable state).
        """
        key = (mode, locs, self._moves_read_slots(locs)(vars))
        cached = self._moves_cache.get(key)
        if cached is not None:
            return cached
        if mode not in MODES:
            raise ValueError(f"unknown move mode {mode!r}; known: {MODES}")
        moves = self._enumerate_moves(locs, vars, mode)
        self._moves_cache[key] = moves
        return moves

    def open_moves_from(
        self, locs: Tuple[int, ...], vars: Tuple[int, ...]
    ) -> List[Move]:
        """Moves of an *open* system: sync edges fire alone.

        Used when a network models a single component (the plant spec for
        the tioco monitor, or a simulated implementation) whose partners
        live outside the model: an edge ``c?`` on an input channel is an
        input move, ``c!`` on an output channel is an output move.  On a
        broadcast channel the *edge* decides: the emitting half ``c!`` is
        an (observable, uncontrollable) output of the component, the
        receiving half ``c?`` an input the environment may trigger.

        Equivalent to ``moves_from(locs, vars, mode=OPEN)`` — and, for a
        single-automaton network, to the partial semantics.
        """
        return self.moves_from(locs, vars, OPEN)

    def partial_moves_from(
        self, locs: Tuple[int, ...], vars: Tuple[int, ...]
    ) -> List[Move]:
        """Moves of the partial composition (``moves_from`` in PARTIAL mode)."""
        return self.moves_from(locs, vars, PARTIAL)

    def partial_hides_syncs(self) -> bool:
        """Whether partial-mode enumeration can produce hidden sync moves.

        True iff some pairable channel is internalised by the network's
        partition.  When False the partial semantics has no unobservable
        timed moves beyond plain ``tau`` edges, and an exact
        (single-state) monitor remains sound.
        """
        cached = getattr(self.network, "_partial_hides", None)
        if cached is None:
            cached = bool(self.network.internalised_channels())
            self.network._partial_hides = cached
        return cached

    def _enumerate_moves(
        self, locs: Tuple[int, ...], vars: Tuple[int, ...], mode: str
    ) -> List[Move]:
        ctx = self.ctx(vars)
        committed = self.has_committed(locs)
        network = self.network
        boundary = network.boundary
        moves: List[Move] = []

        def committed_ok(indices: Iterable[int]) -> bool:
            if not committed:
                return True
            for a_idx in indices:
                automaton = self.automata[a_idx]
                if automaton.location_list[locs[a_idx]].committed:
                    return True
            return False

        # Internal (tau) edges are identical in every mode.
        for a_idx, per_loc in enumerate(self._internal):
            for edge in per_loc.get(locs[a_idx], ()):
                if not committed_ok((a_idx,)):
                    continue
                if self._edge_int_ok(edge, vars, ctx):
                    moves.append(
                        Move("tau", "internal", edge.controllable, ((a_idx, edge),))
                    )
        for channel_name, channel in network.channels.items():
            emitters = self._emit.get(channel_name) or {}
            receivers = self._recv.get(channel_name) or {}
            if not emitters and not receivers:
                continue
            if channel.broadcast:
                if mode == OPEN:
                    moves.extend(
                        self._solo_moves(
                            channel, emitters, receivers, locs, vars, ctx,
                            committed_ok,
                        )
                    )
                    continue
                hidden = mode == PARTIAL and channel_name not in boundary
                moves.extend(
                    self._broadcast_moves(
                        channel_name, emitters, receivers, locs, vars, ctx,
                        committed_ok,
                        direction="internal" if hidden else "output",
                    )
                )
                if mode == PARTIAL and not hidden:
                    # The (unmodeled) environment may emit: one input move
                    # per choice of one enabled receiving edge in every
                    # listening automaton.
                    moves.extend(
                        self._broadcast_input_moves(
                            channel_name, receivers, locs, vars, ctx,
                            committed_ok,
                        )
                    )
                continue
            pairable = network.channel_pairable(channel_name)
            if mode == OPEN or (mode == PARTIAL and not pairable):
                if mode == PARTIAL and channel_name not in boundary:
                    continue  # internalised but unpairable: dead channel
                moves.extend(
                    self._solo_moves(
                        channel, emitters, receivers, locs, vars, ctx,
                        committed_ok,
                    )
                )
                continue
            if mode == PARTIAL and channel_name not in boundary:
                # Internalised: a hidden plant-internal step — per the
                # TIOGA convention internal moves are uncontrollable,
                # whatever the channel kind says.
                direction = "internal"
                controllable = False
            else:
                direction = (
                    "input"
                    if channel.kind == "input"
                    else "output"
                    if channel.kind == "output"
                    else "internal"
                )
                controllable = channel.controllable
            for i, send_by_loc in emitters.items():
                for e_send in send_by_loc.get(locs[i], ()):
                    if not self._edge_int_ok(e_send, vars, ctx):
                        continue
                    for j, recv_by_loc in receivers.items():
                        if i == j:
                            continue
                        for e_recv in recv_by_loc.get(locs[j], ()):
                            if not committed_ok((i, j)):
                                continue
                            if not self._edge_int_ok(e_recv, vars, ctx):
                                continue
                            moves.append(
                                Move(
                                    channel_name,
                                    direction,
                                    controllable,
                                    ((i, e_send), (j, e_recv)),
                                )
                            )
        return moves

    def _solo_moves(
        self,
        channel,
        emitters,
        receivers,
        locs: Tuple[int, ...],
        vars: Tuple[int, ...],
        ctx: Context,
        committed_ok,
    ) -> List[Move]:
        """Sync halves firing alone (open mode / unpairable boundary)."""
        moves: List[Move] = []
        if channel.broadcast:
            emit_dir, recv_dir = "output", "input"
            emit_ctl, recv_ctl = False, True
        else:
            emit_dir = recv_dir = (
                "input"
                if channel.kind == "input"
                else "output"
                if channel.kind == "output"
                else "internal"
            )
            emit_ctl = recv_ctl = channel.controllable
        for table, direction, controllable in (
            (emitters, emit_dir, emit_ctl),
            (receivers, recv_dir, recv_ctl),
        ):
            for a_idx, by_loc in table.items():
                for edge in by_loc.get(locs[a_idx], ()):
                    if not committed_ok((a_idx,)):
                        continue
                    if self._edge_int_ok(edge, vars, ctx):
                        moves.append(
                            Move(
                                channel.name,
                                direction,
                                controllable,
                                ((a_idx, edge),),
                            )
                        )
        return moves

    def _broadcast_moves(
        self,
        channel_name: str,
        emitters,
        receivers,
        locs: Tuple[int, ...],
        vars: Tuple[int, ...],
        ctx: Context,
        committed_ok,
        direction: str = "output",
    ) -> List[Move]:
        """Broadcast synchronizations from a discrete state.

        One move per (enabled emitter edge, choice of one enabled receiving
        edge per listening automaton).  Receivers never block the emitter:
        an automaton with no enabled receiving edge simply does not
        participate.  Broadcast receiver guards are integer-only (enforced
        by :meth:`Network.prepare`), so the participating set is fully
        determined by the discrete state and each combination is a single
        symbolic move.  In a committed state the move is enabled iff *some*
        participant (emitter or receiver) occupies a committed location.
        ``direction`` is ``output`` (observable) or ``internal`` (a
        broadcast internalised by the partial semantics).
        """
        moves: List[Move] = []
        for i, send_by_loc in emitters.items():
            for e_send in send_by_loc.get(locs[i], ()):
                if not self._edge_int_ok(e_send, vars, ctx):
                    continue
                per_automaton: Dict[int, List[Edge]] = {}
                for j, recv_by_loc in receivers.items():
                    if i == j:
                        continue
                    for e_recv in recv_by_loc.get(locs[j], ()):
                        if self._edge_int_ok(e_recv, vars, ctx):
                            per_automaton.setdefault(j, []).append(e_recv)
                indices = sorted(per_automaton)
                if not committed_ok((i,) + tuple(indices)):
                    continue
                for combo in itertools.product(
                    *(per_automaton[j] for j in indices)
                ):
                    participants = tuple(zip(indices, combo))
                    moves.append(
                        Move(
                            channel_name,
                            direction,
                            False,
                            ((i, e_send),) + participants,
                        )
                    )
        return moves

    def _broadcast_input_moves(
        self,
        channel_name: str,
        receivers,
        locs: Tuple[int, ...],
        vars: Tuple[int, ...],
        ctx: Context,
        committed_ok,
    ) -> List[Move]:
        """Receptions of an environment-emitted broadcast (partial mode).

        Every automaton with an enabled receiving edge participates; one
        move per choice of one enabled edge each.  No move is produced
        when nobody listens (an unheard broadcast is not a transition of
        the plant).
        """
        per_automaton: Dict[int, List[Edge]] = {}
        for j, recv_by_loc in receivers.items():
            for e_recv in recv_by_loc.get(locs[j], ()):
                if self._edge_int_ok(e_recv, vars, ctx):
                    per_automaton.setdefault(j, []).append(e_recv)
        indices = sorted(per_automaton)
        if not indices or not committed_ok(tuple(indices)):
            return []
        moves: List[Move] = []
        for combo in itertools.product(*(per_automaton[j] for j in indices)):
            moves.append(
                Move(channel_name, "input", True, tuple(zip(indices, combo)))
            )
        return moves

    # ------------------------------------------------------------------
    # Discrete transition pieces
    # ------------------------------------------------------------------

    def target_locs(self, locs: Tuple[int, ...], move: Move) -> Tuple[int, ...]:
        out = list(locs)
        for a_idx, edge in move.edges:
            out[a_idx] = self.automata[a_idx].location_index(edge.target)
        return tuple(out)

    def apply_move_vars(
        self, vars: Tuple[int, ...], move: Move
    ) -> Optional[Tuple[int, ...]]:
        """Variable update of a move (emitter first); None on range error.

        Memoized: the same move fires from the same var state once per
        source zone during exploration.
        """
        if not any(edge.int_assigns for _, edge in move.edges):
            return vars
        key = (tuple(edge.index for _, edge in move.edges), vars)
        cached = self._assign_cache.get(key)
        if cached is None:
            state: Optional[Tuple[int, ...]] = vars
            for a_idx, edge in move.edges:
                if edge.int_assigns:
                    try:
                        state = apply_assignments(
                            edge.int_assigns, self.ctx(state)
                        )
                    except (OverflowError, EvalError):
                        state = None
                        break
            cached = (state,)
            self._assign_cache[key] = cached
        return cached[0]

    def guard_constraints(self, move: Move, vars: Tuple[int, ...]):
        """Encoded clock constraints of a move's guards (memoized)."""
        idxs = tuple(edge.index for _, edge in move.edges)
        project = self._guard_slots.get(idxs)
        if project is None:
            project = self._projector(
                [
                    atom.rhs
                    for _, edge in move.edges
                    for atom in edge.guard_split.clock_atoms
                ]
            )
            self._guard_slots[idxs] = project
        key = (idxs, project(vars))
        cached = self._guard_cache.get(key)
        if cached is not None:
            return cached
        ctx = self.ctx(vars)
        constraints = []
        for _, edge in move.edges:
            constraints.extend(edge.guard_split.clock_constraints(ctx))
        self._guard_cache[key] = constraints
        return constraints

    def resets_of(self, move: Move) -> Tuple[Tuple[int, int], ...]:
        """Clock assignments of a move, emitter first (later wins); memoized."""
        key = tuple(edge.index for _, edge in move.edges)
        cached = self._resets_cache.get(key)
        if cached is None:
            merged: Dict[int, int] = {}
            for _, edge in move.edges:
                for clock, value in edge.clock_resets:
                    merged[clock] = value
            cached = tuple(sorted(merged.items()))
            self._resets_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Symbolic semantics
    # ------------------------------------------------------------------

    def initial_symbolic(self) -> SymbolicState:
        locs = self.network.initial_locations()
        vars = self.decls.initial_state()
        if not self.invariant_int_ok(locs, vars):
            raise ModelError("initial state violates an integer invariant")
        zone = DBM.zero(self.dim)
        inv = self.invariant_zone(locs, vars)
        zone = zone.intersect(inv)
        if zone.is_empty():
            raise ModelError("initial state violates a clock invariant")
        return self.delay_closure(SymbolicState(locs, vars, zone))

    def delay_closure(self, sym: SymbolicState) -> SymbolicState:
        if not self.can_delay(sym.locs):
            return sym
        # Memoized on the zone's canonical bytes: distinct source nodes
        # frequently post into byte-identical zones (resets collapse
        # differences), repeating the same up-and-constrain.
        key = (
            sym.locs,
            self._inv_projectors(sym.locs)[1](sym.vars),
            sym.zone.hash_key(),
        )
        zone = self._delay_cache.get(key)
        if zone is None:
            zone = sym.zone.up().constrained(
                self.invariant_constraints(sym.locs, sym.vars)
            )
            self._delay_cache[key] = zone
        return SymbolicState(sym.locs, sym.vars, zone)

    def post(self, sym: SymbolicState, move: Move) -> Optional[SymbolicState]:
        """Discrete successor (no delay closure); None if disabled/empty."""
        new_vars = self.apply_move_vars(sym.vars, move)
        if new_vars is None:
            return None
        new_locs = self.target_locs(sym.locs, move)
        if not self.invariant_int_ok(new_locs, new_vars):
            return None
        zone = sym.zone.constrained(self.guard_constraints(move, sym.vars))
        if zone.is_empty():
            return None
        zone = zone.assign_clocks(self.resets_of(move))
        zone = zone.constrained(self.invariant_constraints(new_locs, new_vars))
        if zone.is_empty():
            return None
        return SymbolicState(new_locs, new_vars, zone)

    def pred(
        self,
        source: SymbolicState,
        move: Move,
        target_fed: Federation,
    ) -> Federation:
        """States of ``source`` whose ``move``-successor lies in ``target_fed``."""
        if target_fed.is_empty():
            return Federation.empty(self.dim)
        fed = target_fed.assign_pred(self.resets_of(move))
        fed = fed.constrained(self.guard_constraints(move, source.vars))
        return fed.intersect_zone(source.zone)

    # ------------------------------------------------------------------
    # Concrete semantics
    # ------------------------------------------------------------------

    def initial_concrete(self) -> ConcreteState:
        locs = self.network.initial_locations()
        vars = self.decls.initial_state()
        return ConcreteState(locs, vars, zero_valuation(self.dim))

    def max_delay(
        self, state: ConcreteState
    ) -> Tuple[Optional[Fraction], bool]:
        """Largest delay allowed by invariants: (bound, strict); None = inf."""
        if not self.can_delay(state.locs):
            return Fraction(0), False
        zone = self.invariant_zone(state.locs, state.vars)
        hi: Optional[Fraction] = None
        hi_strict = False
        for i in range(1, self.dim):
            enc = int(zone.m[i, 0])
            if enc >= INF:
                continue
            value, strict = decode(enc)
            slack = Fraction(value) - state.clocks[i]
            if hi is None or slack < hi or (slack == hi and strict):
                hi, hi_strict = slack, strict
        return hi, hi_strict

    def enabled_interval(
        self, state: ConcreteState, move: Move
    ) -> Optional[DelayInterval]:
        """Delays after which ``move`` is enabled (guards + invariants).

        Integer guards were already checked by :meth:`moves_from`.  Returns
        None when no delay enables the move.
        """
        lo = Fraction(0)
        lo_strict = False
        hi, hi_strict = self.max_delay(state)
        for i, j, enc in self.guard_constraints(move, state.vars):
            if enc >= INF:
                continue
            value, strict = decode(enc)
            vi = state.clocks[i] if i else Fraction(0)
            vj = state.clocks[j] if j else Fraction(0)
            if i != 0 and j != 0:
                diff = vi - vj
                if diff > value or (diff == value and strict):
                    return None
                continue
            if j == 0:
                # (v_i + d) ≺ value  ->  d ≺ value - v_i
                slack = Fraction(value) - vi
                if hi is None or slack < hi or (slack == hi and strict and not hi_strict):
                    hi, hi_strict = slack, strict
            else:
                # -(v_j + d) ≺ value  ->  d ≻ -value - v_j
                need = -Fraction(value) - vj
                if need > lo or (need == lo and strict and not lo_strict):
                    lo, lo_strict = need, strict
        interval = DelayInterval(lo, lo_strict, hi, hi_strict)
        if interval.is_empty():
            return None
        return interval

    def move_options(
        self,
        state: ConcreteState,
        *,
        open_system: bool = False,
        mode: Optional[str] = None,
        directions: Optional[Tuple[str, ...]] = None,
    ) -> List[Tuple[Move, DelayInterval]]:
        """Moves enabled from ``state`` after *some* legal delay.

        Returns ``(move, interval)`` pairs where ``interval`` is the set of
        delays enabling the move (guards and the source invariant).  This
        is the shared enumeration primitive of the tioco/rtioco monitors,
        the simulated implementations, and the random-run machinery of
        :mod:`repro.gen`.  ``mode`` selects the enumeration semantics
        explicitly; the legacy ``open_system`` flag maps to ``OPEN``.
        """
        if mode is None:
            mode = OPEN if open_system else CLOSED
        moves = self.moves_from(state.locs, state.vars, mode)
        options: List[Tuple[Move, DelayInterval]] = []
        for move in moves:
            if directions is not None and move.direction not in directions:
                continue
            # Variable feasibility: a move whose update leaves a bounded
            # variable's range (or violates the target's integer
            # invariant) is not a transition — :meth:`fire` refuses it,
            # so it must not be offered as enabled either.  Delays don't
            # change variables, so this is delay-independent.
            new_vars = self.apply_move_vars(state.vars, move)
            if new_vars is None:
                continue
            if not self.invariant_int_ok(self.target_locs(state.locs, move), new_vars):
                continue
            interval = self.enabled_interval(state, move)
            if interval is not None:
                options.append((move, interval))
        return options

    def enabled_now(
        self,
        state: ConcreteState,
        *,
        open_system: bool = False,
        mode: Optional[str] = None,
        directions: Optional[Tuple[str, ...]] = None,
    ) -> List[Tuple[Move, DelayInterval]]:
        """Moves enabled at the current instant (zero delay)."""
        zero = Fraction(0)
        return [
            (move, interval)
            for move, interval in self.move_options(
                state, open_system=open_system, mode=mode, directions=directions
            )
            if interval.contains(zero)
        ]

    def fire(self, state: ConcreteState, move: Move) -> Optional[ConcreteState]:
        """Fire a move from a concrete state (delay 0); None if disabled."""
        interval = self.enabled_interval(state, move)
        if interval is None or not interval.contains(Fraction(0)):
            return None
        new_vars = self.apply_move_vars(state.vars, move)
        if new_vars is None:
            return None
        new_locs = self.target_locs(state.locs, move)
        if not self.invariant_int_ok(new_locs, new_vars):
            return None
        clocks = list(state.clocks)
        for clock, value in self.resets_of(move):
            clocks[clock] = Fraction(value)
        new_state = ConcreteState(new_locs, new_vars, tuple(clocks))
        inv = self.invariant_zone(new_locs, new_vars)
        if not new_state.in_zone(inv):
            return None
        return new_state

    def delay_ok(self, state: ConcreteState, d: Fraction) -> bool:
        hi, hi_strict = self.max_delay(state)
        if d == 0:
            return True
        if hi is None:
            return True
        return d < hi or (d == hi and not hi_strict)
