"""A train-gate controller as a timed game (extra case study).

The classic UPPAAL(-TIGA) bridge scenario, recast in this library's
plant/controller split: ``n`` trains approach a single-track bridge;
each train announces itself (``appr_i!``, uncontrollable), rolls onto the
bridge within a time window unless stopped early enough (``stop_i?``),
and leaves after a crossing time (``leave_i!``, uncontrollable timing).
The controller (gate) decides when to stop and restart trains.

This model complements the paper's two case studies with a *safety*
objective — ``control: A[] !(Train0.Cross && Train1.Cross)`` — and a
family of reachability purposes, and is used by the safety-game tests and
the documentation examples.

Timing (per train, clock ``x_i``):

* ``Appr``: crosses on its own at ``x in [10, 20]``; can only be stopped
  while ``x <= 10``;
* ``Cross``: takes ``[3, 5]`` time units;
* ``Start`` (after ``go_i?``): reaches the bridge at ``x in [7, 15]``.
"""

from __future__ import annotations

from ..ta.builder import NetworkBuilder
from ..ta.model import Network

APPROACH_MIN = 10
APPROACH_MAX = 20
CROSS_MIN = 3
CROSS_MAX = 5
RESTART_MIN = 7
RESTART_MAX = 15


def _add_train(net: NetworkBuilder, i: int) -> None:
    x = f"x{i}"
    train = net.automaton(f"Train{i}")
    train.location("Safe", initial=True)
    train.location("Appr", invariant=f"{x} <= {APPROACH_MAX}")
    train.location("Stop")
    train.location("Start", invariant=f"{x} <= {RESTART_MAX}")
    train.location("Cross", invariant=f"{x} <= {CROSS_MAX}")

    train.edge("Safe", "Appr", sync=f"appr{i}!", assign=f"{x} := 0")
    # Rolls onto the bridge on its own (uncontrollable internal move).
    train.edge(
        "Appr", "Cross", guard=f"{x} >= {APPROACH_MIN}",
        assign=f"{x} := 0", controllable=False,
    )
    # Can be stopped only early in the approach.
    train.edge("Appr", "Stop", guard=f"{x} <= {APPROACH_MIN}", sync=f"stop{i}?")
    train.edge("Stop", "Start", sync=f"go{i}?", assign=f"{x} := 0")
    train.edge(
        "Start", "Cross", guard=f"{x} >= {RESTART_MIN}",
        assign=f"{x} := 0", controllable=False,
    )
    train.edge(
        "Cross", "Safe", guard=f"{x} >= {CROSS_MIN}", sync=f"leave{i}!",
        assign=f"{x} := 0",
    )
    # Input-enabledness: irrelevant commands are ignored.
    for loc in ("Safe", "Stop", "Start", "Cross"):
        train.edge(loc, loc, sync=f"stop{i}?")
    for loc in ("Safe", "Appr", "Start", "Cross"):
        train.edge(loc, loc, sync=f"go{i}?")


def traingate_network(n: int = 2) -> Network:
    """``n`` trains plus a fully permissive gate (the controller)."""
    if n < 1:
        raise ValueError("need at least one train")
    net = NetworkBuilder(f"traingate-{n}")
    for i in range(n):
        net.clock(f"x{i}")
        net.input_channel(f"stop{i}", f"go{i}")
        net.output_channel(f"appr{i}", f"leave{i}")
    for i in range(n):
        _add_train(net, i)
    gate = net.automaton("Gate")
    gate.location("g", initial=True)
    for i in range(n):
        gate.edge("g", "g", sync=f"appr{i}?")
        gate.edge("g", "g", sync=f"leave{i}?")
        gate.edge("g", "g", sync=f"stop{i}!")
        gate.edge("g", "g", sync=f"go{i}!")
    return net.build()


def exclusion_purpose(n: int = 2) -> str:
    """No two trains on the bridge — the safety objective."""
    clauses = []
    for i in range(n):
        for j in range(i + 1, n):
            clauses.append(f"!(Train{i}.Cross && Train{j}.Cross)")
    return "control: A[] " + " && ".join(clauses)


def crossing_purpose(i: int = 0) -> str:
    """Train ``i`` eventually crosses — a reachability purpose."""
    return f"control: A<> Train{i}.Cross"
