"""A parametric Leader Election Protocol (LEP) — the paper's Table 1 case.

The paper describes (details deferred to its technical report) a
distributed consensus protocol electing the node with the lowest address,
modelled as:

* one TIOGA for an arbitrary node (the plant / IUT), whose ``timeout!``
  "can be produced at any point of a time frame after the node has been
  waiting for a certain period of time without receiving any useful
  messages";
* two TAs for its chaotic environment: all the other nodes, and a message
  buffer of capacity n; the maximum distance between nodes is n-1.

This module rebuilds that structure parametrically in ``n``:

* **IUT** (address n, the worst candidate): waits in ``idle``; receiving a
  message with a *lower* address sets ``betterInfo`` and moves to
  ``forward`` where the improved information is sent on within ``Tsend``;
  without useful messages for ``Twait = max(2, n-1)`` time units it may
  emit ``timeout!`` anywhere in a 2-time-unit frame (the uncontrollable
  output with timing uncertainty) and then re-announce its current best.
* **Env**: generates network traffic (``net_put``) at most once per time
  unit — the chaotic other nodes.
* **Buffer**: n slots with ``inUse[i]`` occupancy flags; stores traffic
  and the IUT's own ``send!`` messages (dropping on overflow — a lossy
  network); delivers a pending message to the IUT (``recv``) with an
  arbitrary (chaotic) address after a minimal transit time.

Message content is carried by the shared variable ``msgAddr`` (UPPAAL
value-passing idiom); because receiver guards cannot see the emitter's
assignment, the IUT processes messages in committed locations.

Test purposes (paper §4, verbatim up to variable scoping syntax)::

    TP1: control: A<> (IUT.betterInfo == 1) and IUT.forward
    TP2: control: A<> forall (i : BufferId) (inUse[i] == 1)
    TP3: control: A<> forall (i : BufferId) (inUse[i] == 1) and IUT.idle
"""

from __future__ import annotations

from typing import List

from ..ta.builder import NetworkBuilder
from ..ta.model import Network

TP1 = "control: A<> (IUT.betterInfo == 1) and IUT.forward"
TP2 = "control: A<> forall (i : BufferId) (inUse[i] == 1)"
TP3 = "control: A<> forall (i : BufferId) (inUse[i] == 1) and IUT.idle"

TEST_PURPOSES = {"TP1": TP1, "TP2": TP2, "TP3": TP3}


def _declare(net: NetworkBuilder, n: int, *, plant_only: bool = False) -> None:
    twait = max(2, n - 1)
    net.constant("N", n)
    net.constant("Twait", twait)
    net.constant("Tframe", 2)
    net.constant("Tsend", 1)
    net.constant("Tgen", 1)
    net.constant("Tdel", 1)
    net.range_type("BufferId", 0, n - 1)
    net.range_type("NodeId", 1, n)
    net.int_var("best", 0, n, init=n)
    net.int_var("betterInfo", 0, 1, init=0)
    net.int_var("msgAddr", 0, n, init=0)
    net.int_array("inUse", n, 0, 1)
    if plant_only:
        # The IUT's own interface: one input, two outputs, one clock.
        net.clock("w")
        net.input_channel("recv")
    else:
        net.clock("w", "e", "b")
        net.input_channel("recv", "net_put")
    net.output_channel("send", "timeout")


def _add_iut(net: NetworkBuilder) -> None:
    iut = net.automaton("IUT")
    iut.location("idle", invariant="w <= Twait + Tframe", initial=True)
    iut.location("forward", invariant="w <= Tsend")
    iut.location("announce", invariant="w <= Tsend")
    iut.location("rcv", committed=True)
    iut.location("rcvF", committed=True)
    iut.location("rcvA", committed=True)

    # Receiving (strong input-enabledness: every stable location).
    iut.edge("idle", "rcv", sync="recv?")
    iut.edge("forward", "rcvF", sync="recv?")
    iut.edge("announce", "rcvA", sync="recv?")

    # Processing: a lower address is "useful" and is forwarded; useless
    # messages do NOT reset the timeout clock w.
    iut.edge(
        "rcv", "forward",
        guard="msgAddr < best",
        assign="best := msgAddr, betterInfo := 1, msgAddr := 0, w := 0",
    )
    iut.edge("rcv", "idle", guard="msgAddr >= best", assign="msgAddr := 0")
    iut.edge(
        "rcvF", "forward",
        guard="msgAddr < best",
        assign="best := msgAddr, betterInfo := 1, msgAddr := 0",
    )
    iut.edge("rcvF", "forward", guard="msgAddr >= best", assign="msgAddr := 0")
    iut.edge(
        "rcvA", "forward",
        guard="msgAddr < best",
        assign="best := msgAddr, betterInfo := 1, msgAddr := 0, w := 0",
    )
    iut.edge("rcvA", "announce", guard="msgAddr >= best", assign="msgAddr := 0")

    # The uncontrollable timeout: anywhere in [Twait, Twait + Tframe].
    iut.edge("idle", "announce", guard="w >= Twait", sync="timeout!", assign="w := 0")

    # Sending (within Tsend, enforced by the invariants).
    iut.edge("forward", "idle", sync="send!", assign="w := 0")
    iut.edge("announce", "idle", sync="send!", assign="w := 0")


def _add_environment(net: NetworkBuilder, n: int) -> None:
    env = net.automaton("Env")
    env.location("free", initial=True)
    env.edge("free", "free", guard="e >= Tgen", sync="net_put!", assign="e := 0")


def _first_fit(i: int) -> str:
    if i == 0:
        return "inUse[0] == 0"
    return f"inUse[{i}] == 0 && forall (j : int[0, {i - 1}]) (inUse[j] == 1)"


def _first_occupied(i: int) -> str:
    if i == 0:
        return "inUse[0] == 1"
    return f"inUse[{i}] == 1 && forall (j : int[0, {i - 1}]) (inUse[j] == 0)"


def _add_buffer(net: NetworkBuilder, n: int) -> None:
    buf = net.automaton("Buffer")
    buf.location("buf", initial=True)
    for i in range(n):
        # Store chaotic network traffic (first free slot).
        buf.edge(
            "buf", "buf",
            guard=_first_fit(i),
            sync="net_put?",
            assign=f"inUse[{i}] := 1",
        )
        # Store the IUT's own messages.
        buf.edge(
            "buf", "buf",
            guard=_first_fit(i),
            sync="send?",
            assign=f"inUse[{i}] := 1",
        )
        # Deliver a pending message with an arbitrary (chaotic) address.
        for k in range(1, n + 1):
            buf.edge(
                "buf", "buf",
                guard=f"{_first_occupied(i)} && b >= Tdel",
                sync="recv!",
                assign=f"inUse[{i}] := 0, msgAddr := {k}, b := 0",
            )
    # Lossy network: sends into a full buffer are dropped.
    buf.edge(
        "buf", "buf",
        guard="forall (j : BufferId) (inUse[j] == 1)",
        sync="send?",
    )
    # The environment observes (ignores) the IUT's timeout announcements.
    buf.edge("buf", "buf", sync="timeout?")


def lep_network(n: int) -> Network:
    """The full game arena: IUT ∥ Env ∥ Buffer with ``n`` nodes."""
    if n < 2:
        raise ValueError("LEP needs at least 2 nodes")
    net = NetworkBuilder(f"lep-{n}")
    _declare(net, n)
    _add_iut(net)
    _add_environment(net, n)
    _add_buffer(net, n)
    return net.build()


def lep_plant(n: int) -> Network:
    """The IUT node alone (open system) for tioco monitoring / IMPs."""
    if n < 2:
        raise ValueError("LEP needs at least 2 nodes")
    net = NetworkBuilder(f"lep-plant-{n}")
    _declare(net, n, plant_only=True)
    _add_iut(net)
    return net.build()


def lep_queries() -> List[str]:
    """The paper's three test purposes, in order."""
    return [TP1, TP2, TP3]
