"""Case-study models: Smart Light (Fig. 2/3), Leader Election (Table 1),
and a train-gate safety game (extra)."""

from .lep import TEST_PURPOSES, TP1, TP2, TP3, lep_network, lep_plant, lep_queries
from .smartlight import smartlight_network, smartlight_plant
from .traingate import crossing_purpose, exclusion_purpose, traingate_network
