"""The Smart Light running example (paper Fig. 2 and Fig. 3).

The plant (Fig. 2) is a touch-controlled light with three stable
brightness levels — ``Off``, ``Dim``, ``Bright`` — and six transient
locations ``L1..L6`` in which the light has up to ``Tp <= 2`` time units
to produce its output.  The user model (Fig. 3) touches the pad at most
once per ``Treact`` time unit.

The paper defers the full edge list to its technical report; this module
reconstructs it from the paper's prose and figure labels:

* from ``Off``, a touch after a long idle period (``x >= Tidle``) goes to
  ``L5``, where the light *chooses* to go Bright, go Dim, or stay quiet
  for up to 2 time units — the paper's example of uncontrollable outputs
  with timing uncertainty;
* from ``Off``, a quick touch (``x < Tidle``) goes to ``L1`` (pending
  ``dim!``);
* from ``Dim``, a quick second touch (``x < Tsw``) goes to ``L2`` (pending
  ``bright!``), a slow touch (``x >= Tsw``) to ``L3`` (pending ``off!``);
* from ``Bright``, a touch goes to ``L4`` (pending ``off!``);
* transient locations accept further touches (strong input-enabledness):
  touching while a ``dim``/reactivation decision is pending escalates to
  the pending-``bright`` location ``L2`` via ``L6``.

All intermediate locations carry the invariant ``Tp <= 2`` from the
figure.  Clock ``x`` measures time since the last stable-state change;
``Tp`` measures time spent in a transient location.
"""

from __future__ import annotations

from ..ta.builder import NetworkBuilder
from ..ta.model import Network

#: Figure 2 constants.
TIDLE = 20
TSW = 4
TPMAX = 2
TREACT = 1


def _add_plant(net: NetworkBuilder, with_env_guards: bool = True) -> None:
    iut = net.automaton("IUT")
    iut.location("Off", initial=True)
    iut.location("Dim")
    iut.location("Bright")
    for name in ("L1", "L2", "L3", "L4", "L5", "L6"):
        iut.location(name, invariant="Tp <= 2")

    # Stable-state touches.
    iut.edge("Off", "L1", guard="x < Tidle", sync="touch?", assign="x := 0, Tp := 0")
    iut.edge("Off", "L5", guard="x >= Tidle", sync="touch?", assign="x := 0, Tp := 0")
    iut.edge("Dim", "L2", guard="x < Tsw", sync="touch?", assign="x := 0, Tp := 0")
    iut.edge("Dim", "L3", guard="x >= Tsw", sync="touch?", assign="x := 0, Tp := 0")
    iut.edge("Bright", "L4", sync="touch?", assign="x := 0, Tp := 0")

    # Pending outputs (uncontrollable, anywhere in the Tp window).
    iut.edge("L1", "Dim", sync="dim!", assign="x := 0")
    iut.edge("L5", "Dim", sync="dim!", assign="x := 0")
    iut.edge("L5", "Bright", sync="bright!", assign="x := 0")
    iut.edge("L2", "Bright", sync="bright!", assign="x := 0")
    iut.edge("L3", "Off", sync="off!", assign="x := 0")
    iut.edge("L4", "Off", sync="off!", assign="x := 0")
    iut.edge("L6", "Bright", sync="bright!", assign="x := 0")

    # Input-enabledness of the transient locations: a touch while a
    # dim/reactivation decision is pending escalates to pending-bright.
    iut.edge("L1", "L6", sync="touch?", assign="Tp := 0")
    iut.edge("L5", "L6", sync="touch?", assign="Tp := 0")
    iut.edge("L2", "L2", sync="touch?")
    iut.edge("L6", "L6", sync="touch?")
    # A touch while switching off re-lights the lamp (pending dim).
    iut.edge("L3", "L1", sync="touch?", assign="Tp := 0")
    iut.edge("L4", "L1", sync="touch?", assign="Tp := 0")


def _declare(net: NetworkBuilder) -> None:
    net.constant("Tidle", TIDLE)
    net.constant("Tsw", TSW)
    net.constant("Treact", TREACT)
    net.clock("x", "Tp")
    net.input_channel("touch")
    net.output_channel("dim", "bright", "off")


def smartlight_plant() -> Network:
    """The plant TIOGA alone (open system, used by the tioco monitor)."""
    net = NetworkBuilder("smartlight-plant")
    _declare(net)
    _add_plant(net)
    return net.build()


def smartlight_network() -> Network:
    """Plant composed with the user TA of Fig. 3 (the game arena)."""
    net = NetworkBuilder("smartlight")
    _declare(net)
    net.clock("z")
    _add_plant(net)

    user = net.automaton("User")
    user.location("Init", initial=True)
    user.location("Work")
    # The user may touch at most once per Treact time unit.
    user.edge("Init", "Work", guard="z >= Treact", sync="touch!", assign="z := 0")
    user.edge("Work", "Work", guard="z >= Treact", sync="touch!", assign="z := 0")
    # The user observes the light's responses (input-enabled for outputs).
    for output in ("dim", "bright", "off"):
        user.edge("Work", "Init", sync=f"{output}?", assign="z := 0")
        user.edge("Init", "Init", sync=f"{output}?", assign="z := 0")
    return net.build()
