"""Measuring time and memory of solver runs (for the Table 1 harness).

The paper reports seconds and megabytes per strategy-generation run; we
measure wall-clock time with ``perf_counter`` and peak *additional* Python
heap via ``tracemalloc``.  ``tracemalloc`` slows allocation-heavy code
down noticeably, so memory tracking is opt-in.
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple


@dataclass
class Measurement:
    seconds: float
    peak_mb: Optional[float]
    result: Any = None
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.error is not None

    def cell(self, precision: int = 2) -> str:
        """Table-cell rendering; '/' marks out-of-resource, as in the paper."""
        if self.failed:
            return "/"
        return f"{self.seconds:.{precision}f}"

    def memory_cell(self) -> str:
        if self.failed or self.peak_mb is None:
            return "/"
        if self.peak_mb < 1:
            return f"{self.peak_mb:.1f}"
        return f"{self.peak_mb:.0f}"


def measure(
    fn: Callable[[], Any],
    *,
    track_memory: bool = True,
    swallow: Tuple[type, ...] = (),
) -> Measurement:
    """Run ``fn`` and record wall time, peak heap, and its result.

    Exceptions whose type is in ``swallow`` become '/' cells instead of
    propagating (used for the paper's out-of-memory markers).
    """
    if track_memory:
        tracemalloc.start()
    start = time.perf_counter()
    error = None
    result = None
    try:
        result = fn()
    except swallow as exc:  # type: ignore[misc]
        error = f"{type(exc).__name__}: {exc}"
    finally:
        elapsed = time.perf_counter() - start
        peak_mb = None
        if track_memory:
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            peak_mb = peak / (1024 * 1024)
    return Measurement(elapsed, peak_mb, result, error)


@contextmanager
def stopwatch():
    """``with stopwatch() as t: ...; t.seconds`` after the block."""

    class _Timer:
        seconds: float = 0.0

    timer = _Timer()
    start = time.perf_counter()
    try:
        yield timer
    finally:
        timer.seconds = time.perf_counter() - start


def format_table(
    title: str,
    column_labels,
    rows,
) -> str:
    """Fixed-width table rendering used by the benchmark harnesses.

    ``rows`` is a list of (row label, [cells]).
    """
    label_width = max([len(r[0]) for r in rows] + [4])
    widths = [
        max(len(str(column_labels[i])), *(len(str(r[1][i])) for r in rows), 5)
        for i in range(len(column_labels))
    ]
    lines = [title]
    header = " " * label_width + " | " + " ".join(
        str(c).rjust(widths[i]) for i, c in enumerate(column_labels)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for label, cells in rows:
        lines.append(
            label.ljust(label_width)
            + " | "
            + " ".join(str(c).rjust(widths[i]) for i, c in enumerate(cells))
        )
    return "\n".join(lines)
