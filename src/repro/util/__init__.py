"""Utilities: resource measurement, table formatting, and op counters."""

from . import counters
from .resources import Measurement, format_table, measure, stopwatch

__all__ = ["Measurement", "format_table", "measure", "stopwatch", "counters"]
