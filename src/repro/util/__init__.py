"""Utilities: resource measurement and table formatting for benchmarks."""

from .resources import Measurement, format_table, measure, stopwatch
