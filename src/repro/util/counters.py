"""Cheap op-level profiling counters for the zone engine and solvers.

Benchmarks should report *what the engine did*, not only wall clock: how
many Floyd-Warshall closures ran (and over how many stacked zones), how
often the exact subtraction fallback fired versus the vectorized
subsumption pre-filter, how large federations get, and how the solver's
incremental caches hit.  Counters are plain dict increments (~100ns), far
below the cost of any counted operation, and are always on.

Usage::

    from repro.util import counters
    counters.reset()
    ... run workload ...
    print(counters.report())

Histogram-style metrics (``observe``) record count / total / max, so
``zones_per_federation`` yields an average and a worst case.

Counters are process-global.  Work sharded across a worker pool
(:mod:`repro.par`) therefore accumulates into *each worker's* globals,
not the parent's: workers ship their raw state home with :func:`export`
and the parent folds it in with :func:`merge`, so op-level profiles
survive the pool instead of silently reading zero under ``--jobs > 1``.
Both counter addition and the count/total/max stat merge are commutative
and associative, so the aggregate is independent of worker scheduling.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Union

_COUNTS: Dict[str, int] = {}
_STATS: Dict[str, list] = {}  # name -> [count, total, max]


def inc(name: str, n: int = 1) -> None:
    """Add ``n`` to a counter."""
    _COUNTS[name] = _COUNTS.get(name, 0) + n


def observe(name: str, value: int) -> None:
    """Record one sample of a size-style metric (count/total/max)."""
    stat = _STATS.get(name)
    if stat is None:
        _STATS[name] = [1, value, value]
    else:
        stat[0] += 1
        stat[1] += value
        if value > stat[2]:
            stat[2] = value


def reset() -> None:
    """Zero every counter and stat."""
    _COUNTS.clear()
    _STATS.clear()


def export() -> Dict[str, Dict]:
    """The raw counter state in a mergeable, picklable form.

    The inverse-ish of :func:`merge`: a worker exports at the end of its
    shard, the parent merges every export.  Unlike :func:`snapshot` the
    stats keep their raw ``[count, total, max]`` triples, so merging
    loses nothing (means are recomputed from the merged totals).
    """
    return {
        "counts": dict(_COUNTS),
        "stats": {name: list(stat) for name, stat in _STATS.items()},
    }


def merge(exported: Dict[str, Dict]) -> None:
    """Fold an :func:`export` from another process into this one's state."""
    for name, n in exported.get("counts", {}).items():
        _COUNTS[name] = _COUNTS.get(name, 0) + n
    for name, (count, total, peak) in exported.get("stats", {}).items():
        stat = _STATS.get(name)
        if stat is None:
            _STATS[name] = [count, total, peak]
        else:
            stat[0] += count
            stat[1] += total
            if peak > stat[2]:
                stat[2] = peak


def merge_all(exports: List[Dict[str, Dict]]) -> None:
    """Merge a batch of exports (order-insensitive)."""
    for exported in exports:
        merge(exported)


def diff(before: Dict[str, Dict], after: Dict[str, Dict]) -> Dict[str, int]:
    """Per-key deltas between two :func:`export` snapshots, flattened.

    The per-unit-of-work profile used as a coverage signal by the fuzz
    corpus (:mod:`repro.corpus`): plain counters yield their increment,
    stats yield ``name.n`` (samples) and ``name.sum`` (total) increments —
    ``max`` is not subtractable and is dropped.  Zero deltas are omitted,
    so an idle counter leaves no key at all.
    """
    out: Dict[str, int] = {}
    before_counts = before.get("counts", {})
    for name, n in after.get("counts", {}).items():
        delta = n - before_counts.get(name, 0)
        if delta:
            out[name] = delta
    before_stats = before.get("stats", {})
    for name, (count, total, _peak) in after.get("stats", {}).items():
        b_count, b_total, _ = before_stats.get(name, (0, 0, 0))
        if count - b_count:
            out[f"{name}.n"] = count - b_count
        if total - b_total:
            out[f"{name}.sum"] = total - b_total
    return out


@contextmanager
def capture(into: Dict[str, int]) -> Iterator[Dict[str, int]]:
    """Accumulate the block's counter deltas into ``into`` (flattened).

    The scoping primitive for work units that *share one process*: the
    asyncio test server interleaves many sessions on one event loop, so
    per-session op profiles cannot come from :func:`reset` the way the
    worker pool's per-task profiles do.  Instead every synchronous slice
    of a session's work runs under ``capture(session.ops)``, and the
    deltas (computed exactly like :func:`diff`) fold into that session's
    own dict.  The block must not yield to other sessions' work (no
    ``await`` inside), or their ops leak into this scope; both the server
    and the in-process drivers only do synchronous work per step, so the
    invariant is structural.
    """
    before = export()
    try:
        yield into
    finally:
        for name, delta in diff(before, export()).items():
            into[name] = into.get(name, 0) + delta


def snapshot() -> Dict[str, Union[int, Dict[str, float]]]:
    """All counters and stats as a plain JSON-friendly dict."""
    out: Dict[str, Union[int, Dict[str, float]]] = dict(_COUNTS)
    for name, (count, total, peak) in _STATS.items():
        out[name] = {
            "count": count,
            "mean": total / count if count else 0.0,
            "max": peak,
        }
    return out


def report() -> str:
    """Human-readable one-line-per-counter rendering."""
    lines = []
    for name in sorted(_COUNTS):
        lines.append(f"{name:40s} {_COUNTS[name]}")
    for name in sorted(_STATS):
        count, total, peak = _STATS[name]
        mean = total / count if count else 0.0
        lines.append(f"{name:40s} n={count} mean={mean:.2f} max={peak}")
    return "\n".join(lines)
