"""Crash-safe campaign checkpointing: an append-only JSONL journal.

One file, ``checkpoint.jsonl`` inside the corpus directory.  The first
line is a header carrying the campaign *fingerprint* — everything the
task list derives from (count, seed, families, checks, config knobs)
plus the planned mutation tasks themselves.  Every line after it is one
finished task: ``{"index": i, "report": {...}}``, appended and flushed
as results land, in completion order.

Two properties matter:

* **The plan is frozen in the header.**  A resumed run rebuilds its
  task list from the recorded mutation plan, not by re-planning against
  the corpus — so the corpus may grow between interrupt and resume
  without changing what the interrupted campaign means, and the resumed
  report is byte-identical to an uninterrupted run at the snapshot the
  plan was made from.
* **Torn tails are survivable.**  A process killed mid-append leaves at
  most one truncated last line; loading tolerates (and drops) exactly
  that, then the task re-runs.  Anything else malformed — or a header
  that does not match the resuming campaign's arguments — raises
  :class:`CheckpointMismatch` rather than silently mixing campaigns.

The journal is transient: :meth:`finalize` removes it once the campaign
completes (that is also the moment results graduate into the corpus).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

from .. import faults
from ..gen.differential import InstanceReport
from .schedule import MutationTask, tasks_from_lists

_KIND_HEADER = "header"
_KIND_REPORT = "report"


class CheckpointMismatch(RuntimeError):
    """The journal on disk belongs to a different campaign."""


def campaign_fingerprint(
    count: int,
    seed: int,
    families: Sequence[str],
    checks: Optional[Sequence[str]],
    gen_config: Optional[dict],
    diff_config: Optional[dict],
    mutations: Sequence[MutationTask],
) -> Dict[str, object]:
    """The JSON-safe identity of a campaign, mutation plan included."""
    return {
        "count": count,
        "seed": seed,
        "families": list(families),
        "checks": list(checks) if checks is not None else None,
        "gen_config": gen_config,
        "diff_config": diff_config,
        "mutations": [task.to_list() for task in mutations],
    }


def fingerprint_core(fingerprint: Dict[str, object]) -> Dict[str, object]:
    """The argument-derived part (everything except the mutation plan)."""
    return {k: v for k, v in fingerprint.items() if k != "mutations"}


class CampaignCheckpoint:
    """The journal handle :func:`repro.gen.run_campaign` records into."""

    def __init__(self, path: str):
        self.path = path
        self.fingerprint: Optional[Dict[str, object]] = None
        self._completed: Dict[int, InstanceReport] = {}
        self._handle = None
        self._torn_at: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def start(self, fingerprint: Dict[str, object]) -> None:
        """Begin a fresh journal (truncating any stale one)."""
        self.fingerprint = fingerprint
        self._completed = {}
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        self._handle = open(self.path, "w", encoding="utf-8")
        self._append({"kind": _KIND_HEADER, "fingerprint": fingerprint})

    def load(
        self, expected_core: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        """Read an existing journal; returns the recorded fingerprint.

        ``expected_core`` (from the resuming run's arguments) must match
        the header's argument-derived part, or the journal belongs to a
        different campaign and resuming would corrupt both.
        """
        fingerprint: Optional[Dict[str, object]] = None
        completed: Dict[int, InstanceReport] = {}
        with open(self.path, "rb") as handle:
            raw = handle.read()
        lines = raw.decode("utf-8").split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        good_bytes = 0
        for pos, line in enumerate(lines):
            try:
                row = json.loads(line)
            except ValueError:
                if pos == len(lines) - 1:
                    break  # torn tail from a mid-append kill: drop it
                raise CheckpointMismatch(
                    f"{self.path}: malformed journal line {pos + 1}"
                )
            good_bytes += len(line.encode("utf-8")) + 1
            if pos == 0:
                if row.get("kind") != _KIND_HEADER:
                    raise CheckpointMismatch(
                        f"{self.path}: first line is not a campaign header"
                    )
                fingerprint = row["fingerprint"]
                continue
            if row.get("kind") != _KIND_REPORT:
                raise CheckpointMismatch(
                    f"{self.path}: unexpected journal line {pos + 1}"
                )
            completed[int(row["index"])] = InstanceReport.from_dict(
                row["report"]
            )
        if fingerprint is None:
            raise CheckpointMismatch(f"{self.path}: empty journal")
        if expected_core is not None:
            core = fingerprint_core(fingerprint)
            if core != expected_core:
                mismatched = sorted(
                    key
                    for key in set(core) | set(expected_core)
                    if core.get(key) != expected_core.get(key)
                )
                raise CheckpointMismatch(
                    f"{self.path}: journal belongs to a different campaign"
                    f" (differs in: {', '.join(mismatched)})"
                )
        if good_bytes < len(raw):
            # Drop the torn tail *on disk* before appending, or the
            # next record would merge into the half-written line — lost
            # on the next load and malformed (a middle line) on the one
            # after that.
            with open(self.path, "r+b") as handle:
                handle.truncate(good_bytes)
        self.fingerprint = fingerprint
        self._completed = completed
        self._handle = open(self.path, "a", encoding="utf-8")
        return fingerprint

    def finalize(self) -> None:
        """The campaign completed: close and remove the journal."""
        self.close()
        try:
            os.remove(self.path)
        except FileNotFoundError:
            pass

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------
    # The run_campaign protocol
    # ------------------------------------------------------------------

    def record(self, index: int, report: InstanceReport) -> None:
        """Journal one finished task (flushed: survives a kill)."""
        self._completed[index] = report
        self._append(
            {"kind": _KIND_REPORT, "index": index, "report": report.to_dict()}
        )

    def completed(self) -> Dict[int, InstanceReport]:
        return dict(self._completed)

    def mutations(self) -> List[MutationTask]:
        """The mutation plan frozen in the header."""
        if self.fingerprint is None:
            return []
        return tasks_from_lists(self.fingerprint.get("mutations", []))

    # ------------------------------------------------------------------

    def _append(self, row: Dict[str, object]) -> None:
        if self._handle is None:  # pragma: no cover - misuse guard
            raise RuntimeError("checkpoint not started or loaded")
        if self._torn_at is not None:
            # A previous append was injected-torn; a real tear can only
            # ever sit at the tail, so the next successful append first
            # truncates it away (exactly what crash recovery does).
            self._handle.truncate(self._torn_at)
            self._handle.seek(self._torn_at)
            self._torn_at = None
        line = json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n"
        if faults.should_fire("corpus.checkpoint.write"):
            # Injected mid-append kill: flush half a line and stop, the
            # exact torn tail :meth:`load` is contracted to survive.
            self._torn_at = self._handle.tell()
            self._handle.write(line[: max(1, len(line) // 2)])
            self._handle.flush()
            os.fsync(self._handle.fileno())
            return
        self._handle.write(line)
        self._handle.flush()
        os.fsync(self._handle.fileno())
