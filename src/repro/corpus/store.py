"""The on-disk seed corpus: one JSON file per structural hash.

Layout (everything human-diffable, nothing binary)::

    DIR/
      entries/
        <structural_hash>.json    # one CorpusEntry
      checkpoint.jsonl            # in-flight campaign journal (transient)

An entry records how to *regenerate* an instance — the seed/family pair
(plus the mutation seed for corpus-scheduled mutants) — never the
network itself: regeneration from integers is the repo-wide determinism
contract, and it keeps entries a few hundred bytes.  Alongside the
reproducer the entry keeps the instance's **coverage signature**: a
digest of the oracle outcomes and the log2-bucketed op-counter profile
(solver iterations, closure counts, estimate sizes — whatever
:mod:`repro.util.counters` saw).  The scheduler ranks entries by how
rare their signature is in the corpus and mutates the rare ones first.

Entries are keyed by :meth:`Network.structural_hash`, so structurally
identical instances (different seeds converging on the same network)
collapse into one entry and re-running a campaign over a populated
corpus only adds genuinely new shapes.  Files carry no timestamps and
iteration is sorted, so a corpus directory is byte-stable under
re-insertion of the same entries — CI can diff artifacts run to run.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterator, List, Optional

from .. import faults
from ..util import counters


class CorruptEntry(ValueError):
    """An on-disk corpus entry failed to parse or verify."""


def entry_checksum(payload: Dict[str, object]) -> str:
    """Checksum of an entry payload (the ``checksum`` key excluded)."""
    body = {k: v for k, v in payload.items() if k != "checksum"}
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

#: Coverage counters are log2-bucketed before hashing: ``867`` and
#: ``901`` closures are the same behaviour, ``8`` and ``8000`` are not.
#: Buckets absorb run-to-run jitter (memo caches, scheduling) that raw
#: counts would turn into spurious "new coverage".


def _bucket(value: int) -> int:
    if value <= 0:
        return 0
    return value.bit_length()


def coverage_signature(
    family: str,
    statuses: Dict[str, str],
    coverage: Optional[Dict[str, int]],
) -> str:
    """Digest of what an instance *did*: outcomes + bucketed op profile."""
    payload = {
        "family": family,
        "statuses": dict(sorted(statuses.items())),
        "profile": {
            name: _bucket(delta)
            for name, delta in sorted((coverage or {}).items())
        },
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass
class CorpusEntry:
    """One interesting instance, reproducible from its integers."""

    structural_hash: str
    seed: int
    family: str
    signature: str  # coverage_signature(...)
    mutation_seed: Optional[int] = None
    statuses: Dict[str, str] = field(default_factory=dict)
    #: Raw (unbucketed) counter deltas, kept for human inspection and
    #: coverage dashboards; the signature alone drives scheduling.
    coverage: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CorpusEntry":
        return cls(
            structural_hash=payload["structural_hash"],
            seed=payload["seed"],
            family=payload["family"],
            signature=payload["signature"],
            mutation_seed=payload.get("mutation_seed"),
            statuses=dict(payload.get("statuses", {})),
            coverage=dict(payload.get("coverage", {})),
        )

    def reproducer(self) -> str:
        if self.mutation_seed is None:
            return f"generate_instance({self.seed}, {self.family!r})"
        return (
            f"mutate_instance({self.seed}, {self.family!r},"
            f" {self.mutation_seed})"
        )


class Corpus:
    """A directory of :class:`CorpusEntry` files keyed by structural hash."""

    def __init__(self, root: str):
        self.root = root
        self.entries_dir = os.path.join(root, "entries")
        os.makedirs(self.entries_dir, exist_ok=True)

    # ------------------------------------------------------------------
    # Single entries
    # ------------------------------------------------------------------

    def _path(self, structural_hash: str) -> str:
        return os.path.join(self.entries_dir, f"{structural_hash}.json")

    def _load_path(self, path: str) -> CorpusEntry:
        """Parse and verify one entry file; :class:`CorruptEntry` on rot.

        Entries written before checksums (no ``checksum`` key) still
        load — ``fsck --repair`` upgrades them in place.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict):
                raise CorruptEntry(f"{path}: not a JSON object")
            recorded = payload.get("checksum")
            if recorded is not None and recorded != entry_checksum(payload):
                raise CorruptEntry(f"{path}: checksum mismatch")
            return CorpusEntry.from_dict(payload)
        except CorruptEntry:
            raise
        except (ValueError, KeyError, TypeError) as exc:
            raise CorruptEntry(f"{path}: {exc}") from exc

    def get(self, structural_hash: str) -> Optional[CorpusEntry]:
        path = self._path(structural_hash)
        try:
            return self._load_path(path)
        except FileNotFoundError:
            return None
        except CorruptEntry:
            counters.inc("corpus.corrupt_entries")
            return None

    def add(self, entry: CorpusEntry) -> bool:
        """Insert an entry; first writer per structural hash wins.

        Returns True when the entry was new.  Keeping the first recorded
        reproducer (rather than overwriting with the latest) makes the
        corpus stable under re-runs: the same campaign over the same
        corpus is a no-op.
        """
        path = self._path(entry.structural_hash)
        if os.path.exists(path):
            return False
        payload = entry.to_dict()
        payload["checksum"] = entry_checksum(payload)
        blob = json.dumps(
            payload, sort_keys=True, indent=1, ensure_ascii=False
        )
        if faults.should_fire("corpus.store.write"):
            # Injected torn write: the entry lands half-written, exactly
            # what a crashed writer without the tmp+rename dance leaves.
            blob = blob[: max(1, len(blob) // 2)]
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(blob + "\n")
        os.replace(tmp, path)
        return True

    def add_report(self, report) -> bool:
        """Insert a campaign :class:`InstanceReport` as a corpus entry."""
        statuses = {r.name: r.status for r in report.results}
        entry = CorpusEntry(
            structural_hash=report.structural_hash,
            seed=report.seed,
            family=report.family,
            signature=coverage_signature(
                report.family, statuses, report.coverage
            ),
            mutation_seed=report.mutation_seed,
            statuses=statuses,
            coverage=dict(report.coverage or {}),
        )
        return self.add(entry)

    # ------------------------------------------------------------------
    # Whole-corpus views
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(
            1
            for name in os.listdir(self.entries_dir)
            if name.endswith(".json")
        )

    def __iter__(self) -> Iterator[CorpusEntry]:
        """Entries in sorted filename order (deterministic).

        Corrupt entries — torn writes, bit rot, checksum mismatches —
        are skipped with a ``corpus.corrupt_entries`` counter bump, so
        one bad file never aborts a campaign; ``fsck`` reports and
        quarantines them out of band.
        """
        for name in sorted(os.listdir(self.entries_dir)):
            if not name.endswith(".json"):
                continue
            try:
                yield self._load_path(os.path.join(self.entries_dir, name))
            except CorruptEntry:
                counters.inc("corpus.corrupt_entries")

    def entries(self) -> List[CorpusEntry]:
        return list(self)

    def signature_counts(self) -> Dict[str, int]:
        """signature -> number of entries carrying it (rarity basis)."""
        counts: Dict[str, int] = {}
        for entry in self:
            counts[entry.signature] = counts.get(entry.signature, 0) + 1
        return counts

    def stats(self) -> Dict[str, int]:
        entries = self.entries()
        return {
            "entries": len(entries),
            "signatures": len({e.signature for e in entries}),
            "families": len({e.family for e in entries}),
        }

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def quarantine_dir(self) -> str:
        return os.path.join(self.root, "quarantine")

    def fsck(self, repair: bool = False) -> Dict[str, object]:
        """Verify every entry file; optionally repair the directory.

        Returns ``{"checked", "ok", "corrupt", "missing_checksum",
        "quarantined", "upgraded"}`` where ``corrupt`` lists unreadable
        or checksum-failing files.  With ``repair=True``, corrupt files
        move to ``<root>/quarantine/`` (preserved for forensics, out of
        the campaign's way) and legacy entries without a checksum are
        rewritten with one.
        """
        corrupt: List[str] = []
        missing: List[str] = []
        checked = 0
        for name in sorted(os.listdir(self.entries_dir)):
            if not name.endswith(".json"):
                continue
            checked += 1
            path = os.path.join(self.entries_dir, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                if not isinstance(payload, dict):
                    raise CorruptEntry("not a JSON object")
                recorded = payload.get("checksum")
                if recorded is not None and recorded != entry_checksum(
                    payload
                ):
                    raise CorruptEntry("checksum mismatch")
                CorpusEntry.from_dict(payload)
                if recorded is None:
                    missing.append(name)
            except (CorruptEntry, ValueError, KeyError, TypeError):
                corrupt.append(name)
        quarantined = upgraded = 0
        if repair:
            if corrupt:
                os.makedirs(self.quarantine_dir(), exist_ok=True)
            for name in corrupt:
                os.replace(
                    os.path.join(self.entries_dir, name),
                    os.path.join(self.quarantine_dir(), name),
                )
                quarantined += 1
            for name in missing:
                path = os.path.join(self.entries_dir, name)
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                payload["checksum"] = entry_checksum(payload)
                blob = json.dumps(
                    payload, sort_keys=True, indent=1, ensure_ascii=False
                )
                tmp = f"{path}.tmp"
                with open(tmp, "w", encoding="utf-8") as handle:
                    handle.write(blob + "\n")
                os.replace(tmp, path)
                upgraded += 1
        return {
            "checked": checked,
            "ok": checked - len(corrupt),
            "corrupt": corrupt,
            "missing_checksum": missing,
            "quarantined": quarantined,
            "upgraded": upgraded,
        }
