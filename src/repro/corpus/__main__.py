"""``python -m repro.corpus`` — corpus maintenance from the shell.

Currently one verb::

    python -m repro.corpus --merge-into DEST SRC [SRC ...]

unions the source corpus directories into DEST (first writer wins per
structural hash; see :mod:`repro.corpus.merge`).
"""

from __future__ import annotations

import argparse
import json
import sys

from .merge import merge_corpora
from .store import Corpus


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.corpus",
        description="Corpus maintenance (merge shard/nightly corpora)",
    )
    parser.add_argument(
        "--merge-into",
        metavar="DEST",
        required=True,
        help="destination corpus directory (created if missing)",
    )
    parser.add_argument(
        "sources",
        nargs="+",
        metavar="SRC",
        help="source corpus directories to union into DEST",
    )
    args = parser.parse_args(argv)
    stats = merge_corpora(args.merge_into, args.sources)
    out = stats.to_dict()
    out["dest"] = args.merge_into
    out["dest_stats"] = Corpus(args.merge_into).stats()
    print(json.dumps(out, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
