"""``python -m repro.corpus`` — corpus maintenance from the shell.

Two verbs::

    python -m repro.corpus --merge-into DEST SRC [SRC ...]
    python -m repro.corpus --fsck DIR [--repair]

``--merge-into`` unions the source corpus directories into DEST (first
writer wins per structural hash; see :mod:`repro.corpus.merge`).

``--fsck`` verifies every persistent artifact under a corpus directory:
entry files (parse + checksum), the in-flight checkpoint journal
(header, line integrity, torn-tail status), and the riding warm cache
(``DIR/warm-cache``, entry ``sha`` checksums).  With ``--repair``,
corrupt entry files move to ``DIR/quarantine/``, corrupt warm-cache
entries are renamed ``.corrupt``, legacy entries gain checksums, and a
journal with a malformed *middle* line is truncated back to its last
valid prefix (every journaled result before the damage survives; the
rest re-runs on resume).  Exit status: 0 when clean or fully repaired,
1 when corruption remains.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .merge import merge_corpora
from .store import Corpus


def _fsck_checkpoint(path: str, repair: bool) -> dict:
    """Validate a checkpoint journal; optionally truncate to the last
    valid prefix when a middle line is rotten."""
    out = {
        "present": os.path.exists(path),
        "lines": 0,
        "torn_tail": False,
        "corrupt_line": None,
        "truncated": False,
    }
    if not out["present"]:
        return out
    with open(path, "r", encoding="utf-8") as handle:
        data = handle.read()
    lines = data.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    good_bytes = 0
    for pos, line in enumerate(lines):
        try:
            row = json.loads(line)
            if pos == 0 and row.get("kind") != "header":
                raise ValueError("first line is not a campaign header")
        except ValueError:
            if pos == len(lines) - 1:
                out["torn_tail"] = True  # survivable by design
            else:
                out["corrupt_line"] = pos + 1
            break
        good_bytes += len(line.encode("utf-8")) + 1
        out["lines"] += 1
    if out["corrupt_line"] is not None and repair:
        with open(path, "r+", encoding="utf-8") as handle:
            handle.truncate(good_bytes)
        out["truncated"] = True
    return out


def _fsck_warm_cache(directory: str, repair: bool) -> dict:
    """Verify warm-cache entry files (parse + recorded ``sha``)."""
    out = {"present": os.path.isdir(directory), "checked": 0, "corrupt": []}
    if not out["present"]:
        return out
    from ..game.warm import WinSetCache

    for dirpath, _dirnames, filenames in os.walk(directory):
        for name in sorted(filenames):
            if not name.endswith(".json"):
                continue
            out["checked"] += 1
            path = os.path.join(dirpath, name)
            try:
                with open(path, encoding="utf-8") as handle:
                    entry = json.load(handle)
                if not isinstance(entry, dict):
                    raise ValueError("not a JSON object")
                recorded = entry.get("sha")
                if recorded is not None and recorded != (
                    WinSetCache._entry_sha(entry)
                ):
                    raise ValueError("checksum mismatch")
            except (OSError, ValueError):
                rel = os.path.relpath(path, directory)
                out["corrupt"].append(rel)
                if repair:
                    try:
                        os.replace(path, path + ".corrupt")
                    except OSError:
                        pass
    return out


def fsck_tree(root: str, repair: bool = False) -> dict:
    """fsck every store under a corpus directory; see module docstring."""
    report = {
        "root": root,
        "entries": Corpus(root).fsck(repair=repair),
        "checkpoint": _fsck_checkpoint(
            os.path.join(root, "checkpoint.jsonl"), repair
        ),
        "warm_cache": _fsck_warm_cache(
            os.path.join(root, "warm-cache"), repair
        ),
    }
    remaining = bool(report["entries"]["corrupt"]) and not repair
    remaining = remaining or (
        report["checkpoint"]["corrupt_line"] is not None
        and not report["checkpoint"]["truncated"]
    )
    remaining = remaining or (
        bool(report["warm_cache"]["corrupt"]) and not repair
    )
    report["clean"] = not remaining
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.corpus",
        description="Corpus maintenance (merge shard corpora, fsck stores)",
    )
    verbs = parser.add_mutually_exclusive_group(required=True)
    verbs.add_argument(
        "--merge-into",
        metavar="DEST",
        help="destination corpus directory (created if missing)",
    )
    verbs.add_argument(
        "--fsck",
        metavar="DIR",
        help="verify entry checksums, checkpoint journal, and warm cache",
    )
    parser.add_argument(
        "--repair",
        action="store_true",
        help="with --fsck: quarantine corrupt files, add missing checksums,"
        " truncate a damaged journal to its valid prefix",
    )
    parser.add_argument(
        "sources",
        nargs="*",
        metavar="SRC",
        help="source corpus directories to union into DEST",
    )
    args = parser.parse_args(argv)
    if args.fsck:
        if args.sources:
            parser.error("--fsck takes no source directories")
        report = fsck_tree(args.fsck, repair=args.repair)
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if report["clean"] else 1
    if args.repair:
        parser.error("--repair only applies to --fsck")
    if not args.sources:
        parser.error("--merge-into requires at least one SRC")
    stats = merge_corpora(args.merge_into, args.sources)
    out = stats.to_dict()
    out["dest"] = args.merge_into
    out["dest_stats"] = Corpus(args.merge_into).stats()
    print(json.dumps(out, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
