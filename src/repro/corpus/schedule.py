"""The mutation scheduler: which corpus entries earn fuzzing budget.

Coverage-guided prioritization in its simplest honest form: an entry is
*interesting* in proportion to how rare its coverage signature is in the
corpus — an instance whose oracle outcomes and op profile look like
nothing else is the one most likely to sit near untested behaviour, so
its neighbourhood (one NetSpec mutation operator away) gets explored
first.  Entries that already failed are excluded: a known disagreement
needs a fix, not more mutants of itself.

Everything is deterministic.  Ranking breaks ties by ``(signature
rarity, family, seed, mutation_seed)``; mutation seeds derive from a
sha256 of the entry's identity and the round number — never from Python
``hash()`` (salted per process) or any RNG state — so the same corpus
snapshot and budget always yield the same task list, which is what lets
a checkpoint fingerprint the plan and a resumed campaign replay it.
"""

from __future__ import annotations

import hashlib
from typing import List, NamedTuple, Optional, Sequence

from .store import Corpus, CorpusEntry

FAIL = "fail"


class MutationTask(NamedTuple):
    """One scheduled mutation, reproducible from its three integers."""

    seed: int
    family: Optional[str]
    mutation_seed: int

    def to_list(self) -> List[object]:
        return [self.seed, self.family, self.mutation_seed]


def derive_mutation_seed(entry: CorpusEntry, round_index: int) -> int:
    """A stable 48-bit mutation seed for round ``k`` on an entry."""
    blob = (
        f"{entry.structural_hash}:{entry.seed}:{entry.family}:"
        f"{entry.mutation_seed}:{round_index}"
    )
    digest = hashlib.sha256(blob.encode("utf-8")).digest()
    return int.from_bytes(digest[:6], "big")


def plan_mutations(
    corpus: Corpus, budget: int, rounds: int = 2
) -> List[MutationTask]:
    """Schedule up to ``budget`` mutation tasks from a corpus snapshot.

    Entries are ranked rarest-signature-first and visited round-robin:
    every ranked entry gets its round-0 mutant before any gets its
    round-1 mutant (up to ``rounds`` per entry), so a large corpus still
    spreads a small budget across many shapes instead of hammering one.
    Failed entries are skipped entirely.
    """
    if budget <= 0:
        return []
    counts = corpus.signature_counts()
    candidates = [
        entry
        for entry in corpus
        if FAIL not in entry.statuses.values()
    ]
    candidates.sort(
        key=lambda e: (
            counts[e.signature],
            e.family,
            e.seed,
            e.mutation_seed if e.mutation_seed is not None else -1,
        )
    )
    tasks: List[MutationTask] = []
    for round_index in range(max(1, rounds)):
        for entry in candidates:
            if len(tasks) >= budget:
                return tasks
            tasks.append(
                MutationTask(
                    seed=entry.seed,
                    family=entry.family,
                    mutation_seed=derive_mutation_seed(entry, round_index),
                )
            )
    return tasks


def tasks_from_lists(rows: Sequence[Sequence[object]]) -> List[MutationTask]:
    """Rebuild tasks from their JSON (checkpoint header) form."""
    return [
        MutationTask(int(seed), family, int(mutation_seed))
        for seed, family, mutation_seed in rows
    ]
