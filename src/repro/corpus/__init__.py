"""repro.corpus — the persistent, coverage-guided fuzzing corpus.

Turns the one-shot differential campaigns of :mod:`repro.gen` into a
test *fabric* that accumulates across runs:

* :mod:`repro.corpus.store` — an on-disk corpus keyed by
  ``Network.structural_hash``; each entry is a reproducer (seed, family,
  optional mutation seed) plus a coverage signature digesting the
  instance's oracle outcomes and op-counter profile;
* :mod:`repro.corpus.schedule` — the deterministic scheduler: rank
  entries by signature rarity and spend the mutation budget on the rare
  ones, via the NetSpec-level mutation operators
  (:func:`repro.gen.networks.mutate_instance`);
* :mod:`repro.corpus.checkpoint` — an append-only JSONL journal that
  makes campaigns resumable (``python -m repro.gen.cli --corpus DIR
  --resume``) with the report byte-identical to an uninterrupted run.

The corpus directory is plain JSON throughout — diffable, mergeable,
and cheap enough to round-trip as a CI artifact between nightly runs.
"""

from .checkpoint import (
    CampaignCheckpoint,
    CheckpointMismatch,
    campaign_fingerprint,
    fingerprint_core,
)
from .merge import MergeStats, merge_corpora
from .schedule import (
    MutationTask,
    derive_mutation_seed,
    plan_mutations,
    tasks_from_lists,
)
from .store import (
    Corpus,
    CorpusEntry,
    CorruptEntry,
    coverage_signature,
    entry_checksum,
)

__all__ = [
    "CampaignCheckpoint",
    "CheckpointMismatch",
    "campaign_fingerprint",
    "fingerprint_core",
    "Corpus",
    "CorpusEntry",
    "CorruptEntry",
    "coverage_signature",
    "entry_checksum",
    "MergeStats",
    "merge_corpora",
    "MutationTask",
    "derive_mutation_seed",
    "plan_mutations",
    "tasks_from_lists",
]
