"""Union corpus directories: ``merge_corpora(dest, sources)``.

Sharded and nightly campaigns each grow their own corpus; CI wants one.
The merge is nothing more than replaying every source entry through the
destination's first-writer-wins :meth:`~repro.corpus.store.Corpus.add` —
so it inherits the store's properties: idempotent (re-merging is a
no-op), order-sensitive only where two corpora disagree about the same
structural hash (the destination's existing entry, then the earliest
source in argument order, wins), and byte-stable on disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

from .store import Corpus

__all__ = ["MergeStats", "merge_corpora"]


@dataclass
class MergeStats:
    """What one merge did (per source and in total)."""

    added: int = 0
    duplicates: int = 0
    per_source: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "added": self.added,
            "duplicates": self.duplicates,
            "per_source": self.per_source,
        }


def merge_corpora(dest: str, sources: Iterable[str]) -> MergeStats:
    """Union every source corpus into ``dest`` (created if missing)."""
    corpus = Corpus(dest)
    stats = MergeStats()
    for source in sources:
        added = duplicates = 0
        for entry in Corpus(source):
            if corpus.add(entry):
                added += 1
            else:
                duplicates += 1
        stats.added += added
        stats.duplicates += duplicates
        stats.per_source[source] = {
            "added": added,
            "duplicates": duplicates,
        }
    return stats
