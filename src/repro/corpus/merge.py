"""Union corpus directories: ``merge_corpora(dest, sources)``.

Sharded and nightly campaigns each grow their own corpus; CI wants one.
The merge is nothing more than replaying every source entry through the
destination's first-writer-wins :meth:`~repro.corpus.store.Corpus.add` —
so it inherits the store's properties: idempotent (re-merging is a
no-op), order-sensitive only where two corpora disagree about the same
structural hash (the destination's existing entry, then the earliest
source in argument order, wins), and byte-stable on disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

from ..util import counters
from .store import Corpus

__all__ = ["MergeStats", "merge_corpora"]


@dataclass
class MergeStats:
    """What one merge did (per source and in total)."""

    added: int = 0
    duplicates: int = 0
    skipped: int = 0
    per_source: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "added": self.added,
            "duplicates": self.duplicates,
            "skipped": self.skipped,
            "per_source": self.per_source,
        }


def _corrupt_count() -> int:
    return counters.export()["counts"].get("corpus.corrupt_entries", 0)


def merge_corpora(dest: str, sources: Iterable[str]) -> MergeStats:
    """Union every source corpus into ``dest`` (created if missing).

    Corrupt source entries are skipped (the store's iteration
    quarantine), counted per source in ``skipped`` — one rotten file in
    one shard never sinks the nightly union.
    """
    corpus = Corpus(dest)
    stats = MergeStats()
    for source in sources:
        added = duplicates = 0
        corrupt_before = _corrupt_count()
        for entry in Corpus(source):
            if corpus.add(entry):
                added += 1
            else:
                duplicates += 1
        skipped = _corrupt_count() - corrupt_before
        stats.added += added
        stats.duplicates += duplicates
        stats.skipped += skipped
        stats.per_source[source] = {
            "added": added,
            "duplicates": duplicates,
            "skipped": skipped,
        }
    return stats
