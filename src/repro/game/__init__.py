"""Timed-game solving and strategy synthesis (the UPPAAL-TIGA analogue)."""

from .export import (
    PackedStrategy,
    StrategyFormatError,
    load_strategy,
    save_strategy,
    strategy_from_dict,
    strategy_to_dict,
)
from .cooperative import CooperativePlan, CooperativeStrategy, solve_cooperative
from .predt import predt, predt_mixed, up_strict
from .safety import SafetyGameSolver, SafetyResult, SafetyStrategy, solve_safety_game
from .solver import (
    GameError,
    GameResult,
    NodeWin,
    OnTheFlySolver,
    TwoPhaseSolver,
    solve_reachability_game,
)
from .strategy import ActionDecision, Decision, NodeStrategy, Strategy, Verdictish
from .warm import (
    WinSetCache,
    resolve_cache,
    warm_disabled,
    warm_solve,
    warm_solve_mutant,
)
