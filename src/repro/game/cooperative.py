"""Cooperative testing — the paper's future-work item 4.

When no winning strategy exists for a test purpose, the paper proposes a
"small retreat": *cooperative* testing, where the tester steers toward the
goal and relies on the plant's cooperation where the game is not winnable.
The verdict of a cooperative run is ``pass`` if the goal is reached,
``fail`` on a tioco violation (soundness is unaffected), and
``inconclusive`` when the plant simply declined to cooperate.

:class:`CooperativeStrategy` combines:

* the (possibly empty) *winning* region of the ordinary game solver —
  inside it, decisions follow the winning strategy (guaranteed progress);
* outside it, a time-abstract *cooperative distance*: the length of the
  shortest simulation-graph path to a goal node counting every move as
  cooperative.  The tester fires the first controllable edge of a
  shortest path, or waits (bounded) for the plant to take the
  uncontrollable one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..graph.explorer import GraphEdge, GraphNode
from ..semantics.state import ConcreteState
from ..semantics.system import System
from ..tctl.query import Query
from .solver import GameResult, TwoPhaseSolver
from .strategy import Decision, Strategy, Verdictish, zone_delay_interval


@dataclass
class CooperativePlan:
    """Per-node shortest cooperative route to the goal."""

    distance: int
    via: Optional[GraphEdge]  # None at goal nodes


class CooperativeStrategy:
    """Best-effort goal steering with a winning core."""

    def __init__(self, result: GameResult):
        self.result = result
        self.system: System = result.graph.system
        # Inside the (possibly partial) winning region, play to win; the
        # Strategy class itself requires a globally won game.
        self.core: Optional[Strategy] = Strategy(result) if result.winning else None
        self.plans: Dict[int, CooperativePlan] = {}
        self._build_plans()

    # ------------------------------------------------------------------

    def _build_plans(self) -> None:
        graph = self.result.graph
        queue: deque = deque()
        for node in graph.nodes:
            if not self.result.goal.federation(node.sym).is_empty():
                self.plans[node.id] = CooperativePlan(0, None)
                queue.append(node)
        while queue:
            node = queue.popleft()
            dist = self.plans[node.id].distance
            for edge in node.in_edges:
                if edge.source.id not in self.plans:
                    self.plans[edge.source.id] = CooperativePlan(dist + 1, edge)
                    queue.append(edge.source)

    @property
    def goal_reachable(self) -> bool:
        return self.result.graph.initial.id in self.plans

    # ------------------------------------------------------------------

    def _matching_nodes(self, state: ConcreteState) -> List[GraphNode]:
        graph = self.result.graph
        return [
            node
            for node in graph._by_key.get(state.key, ())
            if node.zone.contains(state.clocks)
        ]

    def decide(self, state: ConcreteState) -> Decision:
        """Winning-core decision if available, else cooperative steering."""
        # Winning core first: inside the winning region, play to win.
        if self.core is not None:
            decision = self.core.decide(state)
            if decision.kind != Verdictish.LOST:
                return decision
        # Goal reached outright?
        for node in self._matching_nodes(state):
            if self.result.goal.federation(node.sym).contains(state.clocks):
                return Decision(Verdictish.DONE)
        # Cooperative steering.
        best: Optional[Tuple[int, GraphEdge]] = None
        for node in self._matching_nodes(state):
            plan = self.plans.get(node.id)
            if plan is None or plan.via is None:
                continue
            if best is None or plan.distance < best[0]:
                best = (plan.distance, plan.via)
        if best is None:
            return Decision(Verdictish.LOST)
        _, edge = best
        move = edge.move
        if move.controllable:
            guard = edge.source.zone.constrained(
                self.system.guard_constraints(move, edge.source.sym.vars)
            )
            interval = zone_delay_interval(guard, state.clocks)
            if interval is None:
                return Decision(Verdictish.WAIT, delay=None)
            d = interval.pick()
            if d == 0:
                return Decision(Verdictish.FIRE, move=move)
            return Decision(Verdictish.WAIT, delay=d)
        # Next cooperative step is the plant's: wait for it.
        return Decision(Verdictish.WAIT, delay=None)


def solve_cooperative(
    system: System,
    query: Query,
    *,
    max_nodes: Optional[int] = None,
    time_limit: Optional[float] = None,
) -> CooperativeStrategy:
    """Solve the game and wrap the result for cooperative testing."""
    solver = TwoPhaseSolver(
        system, query, max_nodes=max_nodes, time_limit=time_limit
    )
    result = solver.solve()
    return CooperativeStrategy(result)
