"""Warm-start solving: a win-set solve cache + mutant fixpoint repair.

Every mutation-detection sweep, fuzz campaign, and server synthesis
re-solves near-identical reachability games from zero.  This module makes
the backward fixpoint incremental across *problem instances*:

* :class:`WinSetCache` — an in-process + on-disk cache of **converged**
  per-node winning federations, keyed by the network's
  :meth:`~repro.ta.model.Network.structural_hash`, the query text, and
  the effective ExtraM extrapolation caps.  Federations persist in
  minimal-constraint form (round-trip verified at write time), so entries
  are compact and exact.  A cache hit re-explores the simulation graph
  (cheap, forward-only) and installs the stored fixpoint instead of
  re-running the backward worklist.

* :func:`warm_solve` — the cache-consulting front-end: hit → install,
  miss → two-phase solve to convergence → store.  Only converged results
  are ever cached; an early-stopped on-the-fly solve is an intentional
  under-approximation and is *not* cacheable.

* :func:`warm_solve_mutant` — fixpoint **repair** for a mutant of a base
  model whose edit footprint (touched automaton + locations, reported by
  :meth:`repro.testing.mutants.MutantSpec.footprint`) is known.  Base and
  mutant are solved at their *joint* extrapolation caps (elementwise max
  — a sound ExtraM widening), the mutant graph is explored, and every
  node that cannot reach a footprint location is seeded with the base
  model's converged value for the identical symbolic state.  Only the
  footprint's dependency cone (nodes with a path into the footprint,
  plus any node whose exact symbolic state the base solve never saw) is
  re-run through the incremental worklist.

Soundness of the seeding: the tainted set — nodes with a graph path to a
footprint node — is closed under predecessors, so an untainted node's
successors are all untainted and every play from it uses only structure
the mutation did not touch; its winning set therefore equals the base
model's winning set at the same ``(locations, variables, zone)`` (the
zone graphs simulate the concrete semantics, so "no graph path" implies
"no concrete play").  Seeds keep their base fixpoint steps and repair
steps start above them, preserving the rank discipline strategy
extraction relies on.  Seeded values are exactly the fixpoint (never
over-approximations), so re-evaluating a seeded node during repair is a
no-op — the grow-only worklist stays sound.  The ``warmstart``
differential check (:mod:`repro.gen.differential`) fuzzes warm ≡ cold
win-set equality both ways, like every other fast path in this repo;
any node-matching mismatch falls back to a cold solve
(``solver.warm_mismatches``), never to a wrong answer.

Cache layout: ``<dir>/<2-char shard>/<sha256 key>.json``, one entry per
(structural hash, query, caps).  Delete the directory to clear.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..dbm import (
    DBM,
    Federation,
    minimal_constraints,
    verified_minimal_constraints,
)
from .. import faults
from ..semantics.system import System
from ..ta.model import Network
from ..tctl.goals import GoalPredicate
from ..tctl.query import Query, parse_query
from ..util import counters
from .solver import GameResult, NodeWin, TwoPhaseSolver

__all__ = [
    "WinSetCache",
    "effective_caps",
    "warm_disabled",
    "federation_from_obj",
    "federation_to_obj",
    "joint_caps",
    "minimal_constraints",
    "resolve_cache",
    "warm_solve",
    "warm_solve_mutant",
    "zone_from_obj",
    "zone_to_obj",
]

FORMAT_VERSION = 1


def warm_disabled() -> bool:
    """True when ``REPRO_WARM_OFF=1`` forces cold solving everywhere.

    The benchmark-pair knob (like ``REPRO_ESTIMATE_SCALAR`` for the
    stacked kernel): lets the committed pre/post benchmark pair record
    the cold baseline on identical code, and gives operators a
    kill-switch should a cache directory ever be suspected stale.
    """
    return os.environ.get("REPRO_WARM_OFF") == "1"


# ----------------------------------------------------------------------
# Minimal-constraint zone codec
# ----------------------------------------------------------------------


def zone_to_obj(zone: DBM) -> List[List[int]]:
    """A nonempty canonical zone as its minimal constraint list.

    The reduction itself lives in :mod:`repro.dbm.minform` (it started
    here and was promoted into the DBM layer); this wrapper keeps the
    warm cache's historical fallback counter.
    """
    cons = verified_minimal_constraints(
        zone, fallback_counter="solver.warm_minform_fallbacks"
    )
    return [[int(i), int(j), int(enc)] for i, j, enc in cons]


def zone_from_obj(dim: int, obj: Sequence[Sequence[int]]) -> DBM:
    """Rebuild a canonical zone from :func:`zone_to_obj` output."""
    return DBM.from_constraints(dim, [(c[0], c[1], c[2]) for c in obj])


def federation_to_obj(fed: Federation) -> List[List[List[int]]]:
    """A federation as a list of minimal-constraint zones (exact)."""
    return [zone_to_obj(z) for z in fed.zones]


def federation_from_obj(dim: int, obj) -> Federation:
    """Rebuild a federation from :func:`federation_to_obj` output."""
    return Federation(dim, [zone_from_obj(dim, zone) for zone in obj])


# ----------------------------------------------------------------------
# Extrapolation caps
# ----------------------------------------------------------------------


def effective_caps(
    system: System,
    query: Query,
    extra_max_consts: Optional[Sequence[int]] = None,
) -> Optional[Tuple[int, ...]]:
    """The ExtraM caps a solver run will actually use (None = disabled).

    Mirrors ``SimulationGraph``: the network's per-clock max constants,
    raised by the goal predicate's clock atoms and any explicit override
    (elementwise max); ``None`` for models with diagonal constraints,
    where extrapolation is off.  Part of the cache key — win-sets are
    only comparable at identical caps.
    """
    network = system.network
    if network.has_diagonal_constraints():
        return None
    from ..expr.clocksplit import update_max_constants

    goal = GoalPredicate(system, query.predicate)
    extra = [0] * system.dim
    update_max_constants(goal.clock_atoms(), system.decls, extra)
    caps = [max(a, b) for a, b in zip(network.max_constants(), extra)]
    if extra_max_consts is not None:
        caps = [max(a, b) for a, b in zip(caps, extra_max_consts)]
    return tuple(int(c) for c in caps)


def joint_caps(base: Network, mutant: Network) -> Optional[List[int]]:
    """Joint ExtraM caps for comparing a base model and its mutant.

    Elementwise max of the two models' max constants — sound for both
    (any cap vector dominating a model's actual constants is a valid
    ExtraM widening) and identical on both sides, so matching symbolic
    states extrapolate identically.  ``None`` when either model has
    diagonal constraints or the clock sets differ (fall back to cold).
    """
    if base.has_diagonal_constraints() or mutant.has_diagonal_constraints():
        return None
    if base.dim != mutant.dim:
        return None
    return [max(a, b) for a, b in zip(base.max_constants(), mutant.max_constants())]


# ----------------------------------------------------------------------
# The cache
# ----------------------------------------------------------------------


class WinSetCache:
    """In-process + on-disk cache of converged win-set solves.

    Keys combine the network's structural hash, the query text, and the
    effective extrapolation caps; entries hold every node's winning
    federation *and* its rank layers (fixpoint step → increment), so a
    restored result supports strategy extraction unchanged.  Disk writes
    are atomic (tmp + rename) — concurrent campaign workers sharing a
    directory race benignly, last writer wins with identical content.
    """

    def __init__(self, directory: Optional[str] = None, *, memory: bool = True):
        self.directory = directory
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._memory: Optional[Dict[str, dict]] = {} if memory else None
        # Same-process repeats skip even re-exploration: the installed
        # GameResult is memoized per key.  Results are treated as
        # immutable by every consumer (strategy extraction only reads).
        self._results: Optional[Dict[str, GameResult]] = {} if memory else None

    # -- keying --------------------------------------------------------

    @staticmethod
    def key_for(
        network: Network,
        query: Union[Query, str],
        caps: Optional[Sequence[int]],
    ) -> str:
        payload = json.dumps(
            {
                "format": FORMAT_VERSION,
                "net": network.structural_hash(),
                "query": str(query),
                "caps": None if caps is None else [int(c) for c in caps],
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], key + ".json")

    # -- load / store --------------------------------------------------

    @staticmethod
    def _entry_sha(entry: dict) -> str:
        body = {k: v for k, v in entry.items() if k != "sha"}
        blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def load(self, key: str) -> Optional[dict]:
        """The stored entry for a key, or None (memory first, then disk).

        A disk entry that fails to parse or fails its recorded ``sha``
        checksum is a cache *miss*, never an error: the file is
        quarantined aside (renamed ``.corrupt``) with a
        ``solver.warm_corrupt_entries`` counter bump and the caller
        falls back to a cold solve — degradation costs time, not
        soundness.
        """
        if self._memory is not None:
            entry = self._memory.get(key)
            if entry is not None:
                return entry
        if self.directory:
            path = self._path(key)
            try:
                with open(path, encoding="utf-8") as handle:
                    entry = json.load(handle)
                if not isinstance(entry, dict):
                    raise ValueError("not a JSON object")
                recorded = entry.get("sha")
                if recorded is not None and recorded != self._entry_sha(
                    entry
                ):
                    raise ValueError("checksum mismatch")
            except OSError:
                return None
            except ValueError:
                counters.inc("solver.warm_corrupt_entries")
                try:
                    os.replace(path, path + ".corrupt")
                except OSError:
                    pass
                return None
            if self._memory is not None:
                self._memory[key] = entry
            return entry
        return None

    def store(self, key: str, entry: dict) -> None:
        """Persist an entry (in-process always; on disk when configured)."""
        entry = dict(entry)
        entry["sha"] = self._entry_sha(entry)
        if self._memory is not None:
            self._memory[key] = entry
        if self.directory:
            path = self._path(key)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp = path + f".tmp.{os.getpid()}"
            try:
                blob = json.dumps(entry, separators=(",", ":"))
                if faults.should_fire("warm.cache.write"):
                    # Injected torn write: the entry lands truncated and
                    # the next load quarantines it as a miss.
                    blob = blob[: max(1, len(blob) // 2)]
                with open(tmp, "w", encoding="utf-8") as handle:
                    handle.write(blob)
                os.replace(tmp, path)
            except OSError:
                counters.inc("solver.warm_store_errors")
                try:
                    os.unlink(tmp)
                except OSError:
                    pass

    def cached_result(self, key: str) -> Optional[GameResult]:
        """A GameResult already installed in this process, if any."""
        if self._results is None:
            return None
        return self._results.get(key)

    def forget_results(self) -> None:
        """Drop the installed-result memo, keeping the stored entries.

        Forces the next lookup through the serialize → explore → install
        path — what the ``warmstart`` differential check and the cache
        tests use to exercise the restore path deliberately.
        """
        if self._results is not None:
            self._results.clear()

    def remember_result(self, key: str, result: GameResult) -> None:
        if self._results is not None:
            self._results[key] = result

    def __len__(self) -> int:
        return 0 if self._memory is None else len(self._memory)


def resolve_cache(
    cache: Union[None, str, WinSetCache]
) -> Optional[WinSetCache]:
    """Accept a cache object, a directory path, or None."""
    if cache is None or isinstance(cache, WinSetCache):
        return cache
    return WinSetCache(str(cache))


# ----------------------------------------------------------------------
# Entry codec
# ----------------------------------------------------------------------


def _entry_from_result(result: GameResult) -> dict:
    nodes = []
    for node in result.graph.nodes:
        entry = result.wins.get(node.id)
        if entry is None or entry.win.is_empty():
            continue
        nodes.append(
            {
                "locs": list(node.sym.locs),
                "vars": list(node.sym.vars),
                "zone": zone_to_obj(node.sym.zone),
                "win": federation_to_obj(entry.win),
                "layers": [
                    [int(step), federation_to_obj(fed)]
                    for step, fed in entry.layers
                ],
            }
        )
    return {
        "format": FORMAT_VERSION,
        "dim": result.graph.system.dim,
        "node_count": int(result.graph.node_count),
        "steps": int(result.steps),
        "winning": bool(result.winning),
        "nodes": nodes,
    }


def _install_entry(solver: TwoPhaseSolver, entry: dict) -> Optional[GameResult]:
    """Install a stored fixpoint into a fresh solver; None on mismatch.

    Explores the graph forward (that part is not cached), matches every
    stored record to a live node by exact ``(locs, vars, zone)``, and
    seeds its :class:`NodeWin`.  Any stored record without a live node
    means exploration diverged from the storing process (e.g. a
    hash-seed-dependent fold order) — report a mismatch so the caller
    re-solves cold; never guess.
    """
    started = time.monotonic()
    dim = solver.system.dim
    if entry.get("format") != FORMAT_VERSION or entry.get("dim") != dim:
        return None
    solver.graph.explore_all()
    if entry.get("node_count") != solver.graph.node_count:
        return None  # exploration diverged from the storing process
    index = {
        (node.sym.locs, node.sym.vars, node.sym.zone.hash_key()): node
        for node in solver.graph.nodes
    }
    seeded = 0
    max_step = 0
    try:
        records = entry["nodes"]
        for rec in records:
            zone = zone_from_obj(dim, rec["zone"])
            key = (tuple(rec["locs"]), tuple(rec["vars"]), zone.hash_key())
            node = index.get(key)
            if node is None:
                solver.wins.clear()
                return None
            layers = [
                (int(step), federation_from_obj(dim, obj))
                for step, obj in rec["layers"]
            ]
            version = max((step for step, _ in layers), default=0)
            solver.wins[node.id] = NodeWin(
                federation_from_obj(dim, rec["win"]),
                solver.goal_fed(node),
                layers,
                version,
            )
            seeded += 1
            max_step = max(max_step, version)
    except (KeyError, TypeError, ValueError, IndexError):
        solver.wins.clear()
        return None
    solver._step = max(int(entry.get("steps", max_step)), max_step)
    counters.inc("solver.warm_nodes_seeded", seeded)
    return GameResult(
        solver._initial_winning(),
        solver.graph,
        solver.wins,
        solver.goal,
        solver._step,
        solver.graph.node_count,
        time.monotonic() - started,
    )


# ----------------------------------------------------------------------
# Warm front-ends
# ----------------------------------------------------------------------


def warm_solve(
    system: System,
    query: Union[Query, str],
    *,
    cache: WinSetCache,
    max_nodes: Optional[int] = None,
    time_limit: Optional[float] = None,
    extra_max_consts: Optional[Sequence[int]] = None,
) -> GameResult:
    """Cache-consulting two-phase solve (always converged).

    Hit → explore + install (``solver.warm_hits``); miss → cold solve +
    store (``solver.warm_misses`` / ``solver.warm_stores``); a hit whose
    stored nodes cannot be matched to the freshly explored graph falls
    back to the cold path (``solver.warm_mismatches``).
    """
    if isinstance(query, str):
        query = parse_query(query)
    if warm_disabled():
        return TwoPhaseSolver(
            system,
            query,
            max_nodes=max_nodes,
            time_limit=time_limit,
            extra_max_consts=(
                None if extra_max_consts is None else list(extra_max_consts)
            ),
        ).solve()
    caps = effective_caps(system, query, extra_max_consts)
    key = cache.key_for(system.network, query, caps)
    memo = cache.cached_result(key)
    if memo is not None:
        counters.inc("solver.warm_hits")
        counters.inc("solver.warm_result_hits")
        return memo
    entry = cache.load(key)
    if entry is not None:
        solver = TwoPhaseSolver(
            system,
            query,
            max_nodes=max_nodes,
            time_limit=time_limit,
            extra_max_consts=(
                None if extra_max_consts is None else list(extra_max_consts)
            ),
        )
        result = _install_entry(solver, entry)
        if result is not None:
            counters.inc("solver.warm_hits")
            cache.remember_result(key, result)
            return result
        counters.inc("solver.warm_mismatches")
    else:
        counters.inc("solver.warm_misses")
    solver = TwoPhaseSolver(
        system,
        query,
        max_nodes=max_nodes,
        time_limit=time_limit,
        extra_max_consts=(
            None if extra_max_consts is None else list(extra_max_consts)
        ),
    )
    result = solver.solve()
    cache.store(key, _entry_from_result(result))
    counters.inc("solver.warm_stores")
    cache.remember_result(key, result)
    return result


def _footprint_node_ids(system: System, graph, footprint) -> set:
    """Graph node ids whose location vector hits the edit footprint."""
    foot_locs: Dict[int, set] = {}
    for k, automaton in enumerate(system.network.automata):
        names = footprint.get(automaton.name)
        if not names:
            continue
        indices = {
            automaton.location_index(name)
            for name in names
            if name in automaton.locations
        }
        if indices:
            foot_locs[k] = indices
    if not foot_locs:
        return set()
    return {
        node.id
        for node in graph.nodes
        if any(node.sym.locs[k] in idxs for k, idxs in foot_locs.items())
    }


def warm_solve_mutant(
    base_system: System,
    mutant_system: System,
    query: Union[Query, str],
    footprint: Optional[Dict[str, frozenset]],
    *,
    cache: WinSetCache,
    max_nodes: Optional[int] = None,
    time_limit: Optional[float] = None,
) -> GameResult:
    """Solve a mutant's game by repairing the base model's fixpoint.

    ``footprint`` is the mutant's edit footprint as reported by
    :meth:`repro.testing.mutants.MutantSpec.footprint` (automaton name →
    touched location names); ``None`` means unknown and falls back to a
    cold solve, as do diagonal-constraint models (no extrapolation caps
    to align) and mismatched clock sets.

    The result is converged and node-for-node equal to a cold two-phase
    solve of the mutant **at the joint caps** — what the ``warmstart``
    differential check asserts.  The repaired result is stored back into
    the cache under the mutant's own structural hash, so re-encountering
    the same mutant (sharded campaign workers, repeated sweeps) is a
    plain cache hit.
    """
    if isinstance(query, str):
        query = parse_query(query)
    caps = joint_caps(base_system.network, mutant_system.network)
    if warm_disabled() or caps is None or footprint is None:
        counters.inc("solver.warm_mutant_cold")
        return TwoPhaseSolver(
            mutant_system, query, max_nodes=max_nodes, time_limit=time_limit
        ).solve()

    # The mutant at joint caps may itself be cached (repeat encounters).
    mutant_key = cache.key_for(
        mutant_system.network, query, effective_caps(mutant_system, query, caps)
    )
    memo = cache.cached_result(mutant_key)
    if memo is not None:
        counters.inc("solver.warm_hits")
        counters.inc("solver.warm_result_hits")
        return memo
    entry = cache.load(mutant_key)
    if entry is not None:
        solver = TwoPhaseSolver(
            mutant_system,
            query,
            max_nodes=max_nodes,
            time_limit=time_limit,
            extra_max_consts=caps,
        )
        result = _install_entry(solver, entry)
        if result is not None:
            counters.inc("solver.warm_hits")
            cache.remember_result(mutant_key, result)
            return result
        counters.inc("solver.warm_mismatches")

    started = time.monotonic()
    base = warm_solve(
        base_system,
        query,
        cache=cache,
        max_nodes=max_nodes,
        time_limit=time_limit,
        extra_max_consts=caps,
    )
    solver = TwoPhaseSolver(
        mutant_system,
        query,
        max_nodes=max_nodes,
        time_limit=time_limit,
        extra_max_consts=caps,
    )
    graph = solver.graph
    graph.explore_all()

    # Dependency cone: nodes with a path into a footprint node (values
    # flow backward, so only they can differ from the base fixpoint).
    tainted = _footprint_node_ids(mutant_system, graph, footprint)
    stack = [node for node in graph.nodes if node.id in tainted]
    while stack:
        node = stack.pop()
        for edge in node.in_edges:
            src = edge.source
            if src.id not in tainted:
                tainted.add(src.id)
                stack.append(src)

    base_index: Dict[tuple, Optional[NodeWin]] = {}
    for bnode in base.graph.nodes:
        key3 = (bnode.sym.locs, bnode.sym.vars, bnode.sym.zone.hash_key())
        base_index[key3] = base.wins.get(bnode.id)

    max_step = 0
    seeded = 0
    recompute: List = []
    for node in graph.nodes:
        if node.id in tainted:
            recompute.append(node)
            continue
        key3 = (node.sym.locs, node.sym.vars, node.sym.zone.hash_key())
        if key3 not in base_index:
            # The base solve never saw this exact symbolic state (fold
            # order divergence): recompute it instead of guessing.
            recompute.append(node)
            continue
        bwin = base_index[key3]
        if bwin is None or bwin.win.is_empty():
            continue  # final value: empty — nothing to seed
        solver.wins[node.id] = NodeWin(
            bwin.win, solver.goal_fed(node), list(bwin.layers), bwin.version
        )
        seeded += 1
        max_step = max(max_step, bwin.version)
    counters.inc("solver.warm_nodes_seeded", seeded)
    counters.inc("solver.warm_nodes_repaired", len(recompute))

    # Repair worklist: seeds are exact fixpoint values (never over-
    # approximations), so the grow-only propagation below converges to
    # the mutant's true fixpoint; re-evaluating a seeded node (reachable
    # when an unmatched neighbour grows) can never grow it further.
    solver._step = max(solver._step, max_step)
    deadline = None if time_limit is None else started + time_limit
    queue: deque = deque(recompute)
    queued: Dict[int, bool] = {node.id: True for node in recompute}
    while queue:
        if deadline is not None and time.monotonic() > deadline:
            from ..graph.explorer import ExplorationLimit

            raise ExplorationLimit("warm mutant repair timed out")
        node = queue.popleft()
        queued[node.id] = False
        new_win = solver._update(node)
        if solver._record_growth(node, new_win):
            for edge in node.in_edges:
                source = edge.source
                if not queued.get(source.id):
                    queue.append(source)
                    queued[source.id] = True

    result = GameResult(
        solver._initial_winning(),
        graph,
        solver.wins,
        solver.goal,
        solver._step,
        graph.node_count,
        time.monotonic() - started,
    )
    cache.store(mutant_key, _entry_from_result(result))
    counters.inc("solver.warm_stores")
    cache.remember_result(mutant_key, result)
    return result
