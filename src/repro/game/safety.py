"""Safety games: ``control: A[] φ`` (extension; paper §2.4 mentions the
TCTL subset, UPPAAL-TIGA supports both objectives).

The controller must keep every maximal supervised run inside φ forever
(deadlocking inside φ is acceptable).  We solve the *dual* reachability
game: the opponent tries to force a visit to ¬φ.  ``Lose`` is a least
fixpoint with the roles of the two players swapped relative to
:mod:`repro.game.solver`:

    Lose(n) = ¬φ(n) ∪ [ Predt( G_op , B_op ) ∩ Z(n) ]

    G_op = ¬φ(n) ∪ (∪_u Pred_u(Lose(n'))) ∪ Forced_op
    B_op = ∪_c Pred_c(Z(n') \\ Lose(n'))      (controller escape moves)
    Forced_op = Boundary(n) ∩ (∪_e Pred_e(Z')) \\ (∪_e Pred_e(Z' \\ Lose'))

Monotone because ``Lose`` appears positively in ``G_op`` and negatively
(inside a complement) in ``B_op``.  Ties still favour the opponent, so
opponent arrivals are *lenient* and the controller's escapes do not
protect the arrival instant.  The controller wins iff the initial state is
not in ``Lose``; the safe set is ``Z \\ Lose``.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional

from ..dbm import Federation
from ..graph.explorer import ExplorationLimit, GraphNode, SimulationGraph
from ..semantics.system import System
from ..tctl.goals import GoalPredicate
from ..tctl.query import Query, SAFETY_GAME
from .predt import predt
from .solver import GameError


@dataclass
class SafetyResult:
    """Outcome of a safety game: safe = complement of the lose sets."""

    winning: bool
    graph: SimulationGraph
    loses: Dict[int, Federation]
    invariant: GoalPredicate
    steps: int
    nodes_explored: int
    solve_seconds: float

    def safe_of(self, node: GraphNode) -> Federation:
        """The safe (non-losing) federation of a graph node."""
        lose = self.loses.get(node.id)
        whole = Federation.from_zone(node.zone)
        if lose is None or lose.is_empty():
            return whole
        return whole.subtract(lose)


class SafetyGameSolver:
    """Two-phase solver for ``control: A[] φ``."""

    def __init__(
        self,
        system: System,
        query: Query,
        *,
        max_nodes: Optional[int] = None,
        time_limit: Optional[float] = None,
    ):
        if query.kind != SAFETY_GAME:
            raise GameError(f"safety solver got query kind {query.kind!r}")
        self.system = system
        self.invariant = GoalPredicate(system, query.predicate)
        extra = [0] * system.dim
        from ..expr.clocksplit import update_max_constants

        update_max_constants(self.invariant.clock_atoms(), system.decls, extra)
        self.graph = SimulationGraph(
            system,
            extra_max_consts=extra,
            max_nodes=max_nodes,
            time_limit=time_limit,
        )
        self.time_limit = time_limit
        self.loses: Dict[int, Federation] = {}
        self._bad_cache: Dict[int, Federation] = {}
        self._empty = Federation.empty(system.dim)
        self._step = 0

    # ------------------------------------------------------------------

    def _notphi(self, node: GraphNode) -> Federation:
        cached = self._bad_cache.get(node.id)
        if cached is None:
            good = self.invariant.federation(node.sym)
            cached = Federation.from_zone(node.zone).subtract(good)
            self._bad_cache[node.id] = cached
        return cached

    def _lose(self, node: GraphNode) -> Federation:
        return self.loses.get(node.id, self._empty)

    def _boundary(self, node: GraphNode) -> Federation:
        # Reuse the reachability solver's boundary computation.
        from .solver import TwoPhaseSolver  # noqa: F401 (doc pointer)

        sym = node.sym
        if not self.system.can_delay(sym.locs):
            return Federation.from_zone(sym.zone)
        from ..dbm import INF, decode

        inv = self.system.invariant_zone(sym.locs, sym.vars)
        result = self._empty
        for i in range(1, self.system.dim):
            enc = int(inv.m[i, 0])
            if enc >= INF:
                continue
            value, strict = decode(enc)
            if strict:
                continue
            face = sym.zone.constrained(
                [(i, 0, (value << 1) | 1), (0, i, ((-value) << 1) | 1)]
            )
            if not face.is_empty():
                result = result.union_zone(face)
        return result

    def _update(self, node: GraphNode) -> Federation:
        sym = node.sym
        notphi = self._notphi(node)
        g_op = notphi
        b_op = self._empty
        any_enabled = self._empty
        any_to_safe = self._empty
        for edge in node.out_edges:
            target_lose = self._lose(edge.target)
            target_all = Federation.from_zone(edge.target.zone)
            not_losing = target_all.subtract(target_lose)
            pred_enabled = self.system.pred(sym, edge.move, target_all)
            any_enabled = any_enabled.union(pred_enabled)
            if not not_losing.is_empty():
                safe_pred = self.system.pred(sym, edge.move, not_losing)
                any_to_safe = any_to_safe.union(safe_pred)
                if edge.move.controllable:
                    b_op = b_op.union(safe_pred)
            if not edge.move.controllable and not target_lose.is_empty():
                g_op = g_op.union(self.system.pred(sym, edge.move, target_lose))
        forced = self._boundary(node).intersect(any_enabled).subtract(any_to_safe)
        g_op = g_op.union(forced)
        if self.system.can_delay(sym.locs):
            lose = predt(g_op, b_op, lenient=True).intersect_zone(sym.zone)
        else:
            lose = g_op.subtract(b_op).union(notphi)
        return lose.union(notphi).compact()

    # ------------------------------------------------------------------

    def solve(self) -> SafetyResult:
        """Run the dual (lose-set) fixpoint to convergence."""
        started = time.monotonic()
        deadline = None if self.time_limit is None else started + self.time_limit
        self.graph.explore_all()
        queue: deque = deque()
        queued: Dict[int, bool] = {}
        for node in self.graph.nodes:
            if not self._notphi(node).is_empty():
                queue.append(node)
                queued[node.id] = True
        while queue:
            if deadline is not None and time.monotonic() > deadline:
                raise ExplorationLimit("safety game solving timed out")
            node = queue.popleft()
            queued[node.id] = False
            new_lose = self._update(node)
            old = self._lose(node)
            if old.includes(new_lose):
                continue
            self._step += 1
            self.loses[node.id] = new_lose
            for edge in node.in_edges:
                if not queued.get(edge.source.id):
                    queue.append(edge.source)
                    queued[edge.source.id] = True
        start = self.system.initial_concrete()
        init_lose = self._lose(self.graph.initial)
        winning = not init_lose.contains(start.clocks)
        return SafetyResult(
            winning,
            self.graph,
            self.loses,
            self.invariant,
            self._step,
            self.graph.node_count,
            time.monotonic() - started,
        )


def solve_safety_game(
    system: System,
    query: Query,
    *,
    max_nodes: Optional[int] = None,
    time_limit: Optional[float] = None,
) -> SafetyResult:
    """Convenience front-end for ``control: A[]`` objectives."""
    return SafetyGameSolver(
        system, query, max_nodes=max_nodes, time_limit=time_limit
    ).solve()


class SafetyStrategy:
    """A runtime strategy for a won safety game.

    The rule is simple because the safe set is *inductive* (its own
    greatest fixpoint): stay inside it.  Concretely, at a safe state:

    * if delaying stays safe forever (or until the invariant boundary,
      where a safe controllable edge or a forced-safe move exists), wait;
    * if delaying would leave the safe set at some future instant, fire a
      controllable edge into a safe state strictly before that instant
      (one exists by construction of the fixpoint);
    * a state outside the safe set is lost.

    ``decide`` mirrors :class:`repro.game.strategy.Strategy`'s interface,
    so the same simulation loops can drive either objective.
    """

    def __init__(self, result: SafetyResult):
        if not result.winning:
            raise ValueError("cannot extract a strategy from a lost safety game")
        self.result = result
        self.system = result.graph.system
        self._by_key = {}
        for node in result.graph.nodes:
            self._by_key.setdefault(node.key, []).append(node)

    def _matching(self, state):
        return [
            node
            for node in self._by_key.get(state.key, ())
            if node.zone.contains(state.clocks)
            and self.result.safe_of(node).contains(state.clocks)
        ]

    def decide(self, state):
        """The gate's move at a concrete state (Strategy-compatible)."""
        from fractions import Fraction

        from .strategy import Decision, Verdictish, zone_delay_interval

        matching = self._matching(state)
        if not matching:
            return Decision(Verdictish.LOST)
        # How long can we safely wait?  Find the first instant at which
        # some unsafe zone is entered along the delay.
        horizon: Optional[Fraction] = None
        for node in matching:
            lose = self.result.loses.get(node.id)
            if lose is None:
                continue
            for zone in lose.zones:
                interval = zone_delay_interval(zone, state.clocks)
                if interval is None:
                    continue
                entry = interval.lo
                if horizon is None or entry < horizon:
                    horizon = entry
        if horizon is None:
            return Decision(Verdictish.WAIT, delay=None)
        # Fire a controllable edge into a safe state before the horizon.
        best = None
        for node in matching:
            for edge in node.out_edges:
                if not edge.move.controllable:
                    continue
                target_safe = self.result.safe_of(edge.target)
                fed = self.system.pred(node.sym, edge.move, target_safe)
                for zone in fed.zones:
                    interval = zone_delay_interval(zone, state.clocks)
                    if interval is None:
                        continue
                    at = interval.pick()
                    if at >= horizon and horizon > 0:
                        # Aim strictly before the unsafe entry.
                        midpoint = horizon / 2
                        if interval.contains(midpoint):
                            at = midpoint
                        else:
                            continue
                    if best is None or at < best[0]:
                        best = (at, edge.move)
        if best is None:
            # No escape needed/possible before the horizon; wait up to it.
            return Decision(Verdictish.WAIT, delay=horizon if horizon > 0 else None)
        at, move = best
        if at == 0:
            return Decision(Verdictish.FIRE, move=move)
        return Decision(Verdictish.WAIT, delay=at)
