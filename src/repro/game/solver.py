"""Timed reachability-game solver (the UPPAAL-TIGA analogue).

Given a network, its simulation graph, and a goal predicate, computes for
every explored node the federation of *winning* states: states from which
the controller (tester) can force a visit to the goal set whatever the
uncontrollable (plant) moves are — the reachability control problem of
paper §3.2.

The fixpoint per node is::

    Win(n) = Goal(n) ∪ [ Predt( G_act ∪ G_goal , B ) ∩ Z(n) ]

    G_act  = ∪ { Pred_e(Win(n'))            : e controllable edge n -> n' }
    G_goal = Goal(n) ∪ Forced(n)
    B      = ∪ { Pred_e(Z(n') \\ Win(n'))    : e uncontrollable n -> n' }
    Forced = Boundary(n) ∩ (∪_u Pred_u(Z(n'))) \\ B

``Boundary(n)`` are states where the location invariant blocks any further
delay; there a run can only stay maximal by firing an enabled transition,
so the opponent is *forced* to move — and if every enabled uncontrollable
move leads to winning states, the controller wins by waiting (paper
Def. 7/8 maximal-run semantics; this is what makes ``control: A<>
IUT.Bright`` hold for the Smart Light).

**Committed and urgent states** (``can_delay`` false) are all-boundary:
time is frozen, so the whole zone is treated as forced and the fixpoint
update degenerates to the untimed ``(G_act ∪ G_goal) \\ B`` step.  The
two flags differ only upstream, in move enumeration: committed locations
restrict the enabled moves to those involving a committed automaton,
while urgent locations leave every move enabled — the settling rule the
differential harness cross-checks against the concrete semantics.

Two solving modes:

* :class:`TwoPhaseSolver` — explore the full simulation graph, then run
  the backward worklist fixpoint (simple, always exhaustive);
* :class:`OnTheFlySolver` — interleave forward exploration with backward
  propagation and stop as soon as the initial state is winning (the
  paper's SOTFTG analogue, usually much faster on positive instances).

Monotonicity gives every winning state a **rank** (the fixpoint step at
which it entered ``Win``); ranks strictly decrease along strategy moves
and opponent moves, which is what makes extracted strategies terminating.
Rank layers are recorded per node for strategy extraction.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..dbm import Federation, INF, decode
from ..graph.explorer import ExplorationLimit, GraphNode, SimulationGraph
from ..semantics.system import System
from ..tctl.goals import GoalPredicate
from ..tctl.query import Query, REACH_GAME
from ..util import counters
from .predt import predt_mixed


class GameError(RuntimeError):
    """Raised on unsupported queries or solver misuse."""


@dataclass
class NodeWin:
    """Winning bookkeeping for one graph node."""

    win: Federation
    goal: Federation
    layers: List[Tuple[int, Federation]] = field(default_factory=list)
    version: int = 0  # fixpoint step of the latest growth

    def rank_of(self, valuation) -> Optional[int]:
        """The fixpoint step at which this concrete state became winning."""
        for step, fed in self.layers:
            if fed.contains(valuation):
                return step
        return None


@dataclass
class GameResult:
    """Outcome of solving a timed reachability game."""

    winning: bool
    graph: SimulationGraph
    wins: Dict[int, NodeWin]
    goal: GoalPredicate
    steps: int
    nodes_explored: int
    solve_seconds: float

    @property
    def initial_node(self) -> GraphNode:
        return self.graph.initial

    def win_of(self, node: GraphNode) -> Federation:
        """The winning federation computed for a graph node."""
        entry = self.wins.get(node.id)
        if entry is None:
            return Federation.empty(self.graph.system.dim)
        return entry.win


class _BaseSolver:
    def __init__(
        self,
        system: System,
        query: Query,
        *,
        open_system: bool = False,
        max_nodes: Optional[int] = None,
        time_limit: Optional[float] = None,
        extra_max_consts: Optional[List[int]] = None,
    ):
        if query.kind != REACH_GAME:
            raise GameError(
                f"reachability-game solver got query kind {query.kind!r};"
                f" use SafetyGameSolver for control: A[] queries"
            )
        self.system = system
        self.query = query
        self.goal = GoalPredicate(system, query.predicate)
        extra = [0] * system.dim
        from ..expr.clocksplit import update_max_constants

        update_max_constants(self.goal.clock_atoms(), system.decls, extra)
        if extra_max_consts is not None:
            # Caps override: warm-start solving of a mutant pins base and
            # mutant to their *joint* extrapolation caps (elementwise max —
            # any vector dominating the actual max constants is a sound
            # ExtraM widening), so win-sets are comparable node-for-node.
            extra = [max(a, b) for a, b in zip(extra, extra_max_consts)]
        self.graph = SimulationGraph(
            system,
            open_system=open_system,
            extra_max_consts=extra,
            max_nodes=max_nodes,
            time_limit=time_limit,
        )
        self.time_limit = time_limit
        self.wins: Dict[int, NodeWin] = {}
        self._goal_cache: Dict[int, Federation] = {}
        self._step = 0
        self._empty = Federation.empty(system.dim)
        # Incremental-fixpoint caches.  Winning sets only grow, so
        # ``Pred_e(Win(n'))`` pieces are permanently valid: per
        # controllable edge we remember the successor win-version already
        # folded into the node's accumulated G_act and only push the
        # *increment* through Pred_e when the successor grew.  Losing
        # sets ``Z(n') \ Win(n')`` shrink instead, so their preds are
        # cached per edge keyed by the successor version and recomputed
        # on version change.  ``Pred_e(Z(n'))`` and the boundary are
        # static per node and cached outright.  Keys use ``id(edge)`` —
        # edges are kept alive by their graph nodes.
        self._gact_acc: Dict[int, Federation] = {}  # node.id -> G_act
        self._edge_seen: Dict[int, int] = {}  # id(edge) -> folded version
        self._pred_win_acc: Dict[int, Federation] = {}  # id(edge), u-edges
        self._bad_cache: Dict[int, Federation] = {}  # id(edge) -> B_e
        self._uen_edge: Dict[int, Federation] = {}  # id(edge) -> Pred(Z(n'))
        self._uen_cache: Dict[int, Federation] = {}  # node.id -> union
        self._boundary_cache: Dict[int, Federation] = {}
        self._eval_sig: Dict[int, Tuple[int, ...]] = {}
        self._delta_cache: Dict[tuple, Federation] = {}

    # ------------------------------------------------------------------
    # Per-node pieces
    # ------------------------------------------------------------------

    def goal_fed(self, node: GraphNode) -> Federation:
        cached = self._goal_cache.get(node.id)
        if cached is None:
            cached = self.goal.federation(node.sym)
            self._goal_cache[node.id] = cached
        return cached

    def win_fed(self, node: GraphNode) -> Federation:
        entry = self.wins.get(node.id)
        return self._empty if entry is None else entry.win

    def _boundary(self, node: GraphNode) -> Federation:
        """States of the node where the invariant blocks any delay (cached:
        depends only on the node's static zone and invariant)."""
        cached = self._boundary_cache.get(node.id)
        if cached is not None:
            return cached
        sym = node.sym
        if not self.system.can_delay(sym.locs):
            result = Federation.from_zone(sym.zone)
        else:
            inv = self.system.invariant_zone(sym.locs, sym.vars)
            result = self._empty
            for i in range(1, self.system.dim):
                enc = int(inv.m[i, 0])
                if enc >= INF:
                    continue
                value, strict = decode(enc)
                if strict:
                    continue  # no last instant under a strict bound
                face = sym.zone.constrained(
                    [(i, 0, (value << 1) | 1), (0, i, ((-value) << 1) | 1)]
                )
                if not face.is_empty():
                    result = result.union_zone(face)
        self._boundary_cache[node.id] = result
        return result

    def win_version(self, node: GraphNode) -> int:
        """The fixpoint step at which the node's win last grew (0 = never)."""
        entry = self.wins.get(node.id)
        return 0 if entry is None else entry.version

    def _win_delta(self, node: GraphNode, since: int) -> Federation:
        """The union of win increments recorded after step ``since``.

        Memoized per (node, since, version): every in-edge of a grown
        node asks for the same delta during one propagation round.
        """
        entry = self.wins.get(node.id)
        if entry is None:
            return self._empty
        key = (node.id, since, entry.version)
        cached = self._delta_cache.get(key)
        if cached is None:
            zones = [
                z
                for step, fed in entry.layers
                if step > since
                for z in fed.zones
            ]
            cached = (
                Federation(self.graph.system.dim, zones)
                if zones
                else self._empty
            )
            if len(self._delta_cache) > 4096:
                self._delta_cache.clear()  # stale versions dominate; rebuild
            self._delta_cache[key] = cached
        return cached

    def _assemble(self, node: GraphNode, g_act, bad, u_enabled) -> Federation:
        """The fixpoint equation body, given the node's three edge terms."""
        sym = node.sym
        goal = self.goal_fed(node)
        forced = self._empty
        if not u_enabled.is_empty():
            forced = self._boundary(node).intersect(u_enabled).subtract(bad)
        g_goal = goal.union(forced)
        if self.system.can_delay(sym.locs):
            win = predt_mixed(g_act, g_goal, bad).intersect_zone(sym.zone)
        else:
            win = g_act.union(g_goal).subtract(bad).union(goal)
        return win.union(goal).compact()

    def _update(self, node: GraphNode) -> Federation:
        """Recompute the winning federation of a node from its successors.

        Incremental: per-edge Pred caches mean only edges whose successor
        win actually changed since the last evaluation do zone work; a
        node whose successors are all unchanged returns its current win
        without recomputing anything.

        Both edge terms exploit monotonicity.  ``Pred_e`` is an inverse
        image (reset pre-image ∩ guard ∩ source zone), so it distributes
        over union *and* set difference; winning sets only grow, so

        * ``Pred_e(Win(n'))`` is union-accumulated from the increments
          recorded in the successor's layers, and
        * ``B_e = Pred_e(Z(n') \\ Win(n')) = Pred_e(Z(n')) \\
          Pred_e(Win(n'))`` falls out of the same accumulator and the
          static ``Pred_e(Z(n'))`` without touching the full losing set.
        """
        sym = node.sym
        sig = tuple(self.win_version(e.target) for e in node.out_edges)
        if self._eval_sig.get(node.id) == sig:
            counters.inc("solver.update_skipped")
            return self.win_fed(node)
        counters.inc("solver.updates")
        g_act = self._gact_acc.get(node.id, self._empty)
        u_enabled = self._uen_cache.get(node.id)
        first_visit = u_enabled is None
        if first_visit:
            u_enabled = self._empty
        bad = self._empty
        for edge in node.out_edges:
            eid = id(edge)
            target_version = self.win_version(edge.target)
            if edge.move.controllable:
                seen = self._edge_seen.get(eid, 0)
                if target_version > seen:
                    delta = self._win_delta(edge.target, seen)
                    if not delta.is_empty():
                        counters.inc("solver.pred_delta")
                        g_act = g_act.union(
                            self.system.pred(sym, edge.move, delta)
                        )
                    self._edge_seen[eid] = target_version
                else:
                    counters.inc("solver.pred_cache_hits")
                continue
            uen_e = self._uen_edge.get(eid)
            if uen_e is None:
                uen_e = self.system.pred(
                    sym, edge.move, Federation.from_zone(edge.target.zone)
                )
                self._uen_edge[eid] = uen_e
                u_enabled = u_enabled.union(uen_e)
            seen = self._edge_seen.get(eid, 0)
            if target_version > seen or eid not in self._bad_cache:
                acc = self._pred_win_acc.get(eid, self._empty)
                if target_version > seen:
                    delta = self._win_delta(edge.target, seen)
                    if not delta.is_empty():
                        counters.inc("solver.pred_delta")
                        acc = acc.union(self.system.pred(sym, edge.move, delta))
                        self._pred_win_acc[eid] = acc
                    self._edge_seen[eid] = target_version
                self._bad_cache[eid] = uen_e.subtract(acc)
            else:
                counters.inc("solver.pred_cache_hits")
            bad_e = self._bad_cache[eid]
            if not bad_e.is_empty():
                bad = bad.union(bad_e)
        self._gact_acc[node.id] = g_act
        if first_visit:
            self._uen_cache[node.id] = u_enabled
        win = self._assemble(node, g_act, bad, u_enabled)
        self._eval_sig[node.id] = sig
        return win

    def recompute_node(self, node: GraphNode) -> Federation:
        """The fixpoint equation evaluated from scratch, bypassing every
        incremental cache — the reference implementation ``_update`` must
        agree with (used by the differential harness's fixpoint check)."""
        sym = node.sym
        g_act = self._empty
        bad = self._empty
        u_enabled = self._empty
        for edge in node.out_edges:
            target_win = self.win_fed(edge.target)
            if edge.move.controllable:
                if not target_win.is_empty():
                    g_act = g_act.union(
                        self.system.pred(sym, edge.move, target_win)
                    )
            else:
                target_all = Federation.from_zone(edge.target.zone)
                losing = target_all.subtract(target_win)
                if not losing.is_empty():
                    bad = bad.union(self.system.pred(sym, edge.move, losing))
                u_enabled = u_enabled.union(
                    self.system.pred(sym, edge.move, target_all)
                )
        forced = self._empty
        if not u_enabled.is_empty():
            forced = self._boundary(node).intersect(u_enabled).subtract(bad)
        goal = self.goal_fed(node)
        g_goal = goal.union(forced)
        if self.system.can_delay(sym.locs):
            win = predt_mixed(g_act, g_goal, bad).intersect_zone(sym.zone)
        else:
            win = g_act.union(g_goal).subtract(bad).union(goal)
        return win.union(goal).compact()

    def _record_growth(self, node: GraphNode, new_win: Federation) -> bool:
        entry = self.wins.get(node.id)
        old = self._empty if entry is None else entry.win
        if old.includes(new_win):
            return False
        increment = new_win.subtract(old)
        self._step += 1
        if entry is None:
            entry = NodeWin(new_win, self.goal_fed(node))
            self.wins[node.id] = entry
        else:
            entry.win = new_win
        entry.layers.append((self._step, increment))
        entry.version = self._step
        return True

    def _initial_winning(self) -> bool:
        init = self.graph.initial
        start = self.system.initial_concrete()
        entry = self.wins.get(init.id)
        return entry is not None and entry.win.contains(start.clocks)


class TwoPhaseSolver(_BaseSolver):
    """Explore everything, then run the backward fixpoint to convergence."""

    def solve(self, *, early_stop: bool = False) -> GameResult:
        """Run exploration + fixpoint; ``early_stop`` stops once the
        initial state is winning (sound: winning sets only grow)."""
        started = time.monotonic()
        deadline = None if self.time_limit is None else started + self.time_limit
        self.graph.explore_all()
        queue: deque = deque()
        queued: Dict[int, bool] = {}
        for node in self.graph.nodes:
            if not self.goal_fed(node).is_empty():
                queue.append(node)
                queued[node.id] = True
        while queue:
            if deadline is not None and time.monotonic() > deadline:
                raise ExplorationLimit("game solving timed out")
            node = queue.popleft()
            queued[node.id] = False
            new_win = self._update(node)
            if self._record_growth(node, new_win):
                if early_stop and self._initial_winning():
                    break
                for edge in node.in_edges:
                    source = edge.source
                    if not queued.get(source.id):
                        queue.append(source)
                        queued[source.id] = True
        return GameResult(
            self._initial_winning(),
            self.graph,
            self.wins,
            self.goal,
            self._step,
            self.graph.node_count,
            time.monotonic() - started,
        )


class OnTheFlySolver(_BaseSolver):
    """Interleave exploration with back-propagation (SOTFTG analogue).

    Explores in waves: after each wave of newly expanded nodes, runs the
    backward worklist restricted to the explored subgraph and checks
    whether the initial state is already winning.  Sound because ``Win``
    computed on a subgraph only under-approximates the full fixpoint
    (unexplored successors contribute nothing to ``G_act`` and their
    absence can only shrink ``Forced``; ``B`` edges, conservatively, are
    expanded eagerly for every frontier node before propagation).
    """

    def solve(self, *, wave_size: int = 64) -> GameResult:
        """Interleaved exploration/propagation; ``wave_size`` bounds how
        many nodes are expanded between propagation rounds."""
        started = time.monotonic()
        deadline = None if self.time_limit is None else started + self.time_limit
        graph = self.graph
        frontier: deque = deque([graph.initial])
        seen = {graph.initial.id}
        queue: deque = deque()
        queued: Dict[int, bool] = {}

        def enqueue(node: GraphNode) -> None:
            if not queued.get(node.id):
                queue.append(node)
                queued[node.id] = True

        while frontier:
            if deadline is not None and time.monotonic() > deadline:
                raise ExplorationLimit("game solving timed out")
            wave: List[GraphNode] = []
            while frontier and len(wave) < wave_size:
                wave.append(frontier.popleft())
            for node in wave:
                for edge in graph.expand(node):
                    if edge.target.id not in seen:
                        seen.add(edge.target.id)
                        frontier.append(edge.target)
                # Always evaluate a freshly expanded node: it may have a
                # goal of its own, or an already-winning successor.
                enqueue(node)
            # Uncontrollable successors must be expanded before a node can
            # be judged (its B-term needs all its u-edges): expand frontier
            # nodes reachable by one uncontrollable step.
            while queue:
                if deadline is not None and time.monotonic() > deadline:
                    raise ExplorationLimit("game solving timed out")
                node = queue.popleft()
                queued[node.id] = False
                if not self._fully_expanded_for_bad(node, seen, frontier):
                    continue
                new_win = self._update(node)
                if self._record_growth(node, new_win):
                    if self._initial_winning():
                        return self._result(started, True)
                    for edge in node.in_edges:
                        enqueue(edge.source)
        # Exhausted exploration: run the full fixpoint to convergence.
        # Every node is seeded once; propagation handles the rest.
        for node in graph.nodes:
            enqueue(node)
        while queue:
            if deadline is not None and time.monotonic() > deadline:
                raise ExplorationLimit("game solving timed out")
            node = queue.popleft()
            queued[node.id] = False
            new_win = self._update(node)
            if self._record_growth(node, new_win):
                if self._initial_winning():
                    return self._result(started, True)
                for edge in node.in_edges:
                    enqueue(edge.source)
        return self._result(started, self._initial_winning())

    def converge(self) -> GameResult:
        """Resume a finished :meth:`solve` run to the full fixpoint.

        ``solve`` legitimately stops early once the initial state is
        winning, leaving ``wins`` an under-approximation on the explored
        subgraph.  This explores the rest of the simulation graph and
        runs the backward worklist to convergence, after which the
        per-node winning sets equal the two-phase solver's exactly
        (the differential harness's strengthened equality check).
        """
        started = time.monotonic()
        deadline = None if self.time_limit is None else started + self.time_limit
        self.graph.explore_all()
        queue: deque = deque()
        queued: Dict[int, bool] = {}
        for node in self.graph.nodes:
            queue.append(node)
            queued[node.id] = True
        while queue:
            if deadline is not None and time.monotonic() > deadline:
                raise ExplorationLimit("game solving timed out")
            node = queue.popleft()
            queued[node.id] = False
            new_win = self._update(node)
            if self._record_growth(node, new_win):
                for edge in node.in_edges:
                    if not queued.get(edge.source.id):
                        queue.append(edge.source)
                        queued[edge.source.id] = True
        return self._result(started, self._initial_winning())

    def _fully_expanded_for_bad(self, node, seen, frontier) -> bool:
        """Ensure every successor of the node is already materialized."""
        for edge in self.graph.expand(node):
            if edge.target.id not in seen:
                seen.add(edge.target.id)
                frontier.append(edge.target)
        return True

    def _result(self, started: float, winning: bool) -> GameResult:
        return GameResult(
            winning,
            self.graph,
            self.wins,
            self.goal,
            self._step,
            self.graph.node_count,
            time.monotonic() - started,
        )


def solve_reachability_game(
    system: System,
    query: Query,
    *,
    on_the_fly: bool = True,
    open_system: bool = False,
    max_nodes: Optional[int] = None,
    time_limit: Optional[float] = None,
    warm_cache=None,
) -> GameResult:
    """Convenience front-end used by examples and benchmarks.

    ``warm_cache`` (a :class:`repro.game.warm.WinSetCache` or a cache
    directory path) consults the machine-wide win-set solve cache first:
    a hit installs the persisted converged fixpoint instead of re-running
    it, a miss solves two-phase and stores the result.  The cached path
    always returns converged win-sets (``on_the_fly`` is ignored — an
    early-stopped on-the-fly under-approximation is not cacheable).
    """
    if warm_cache is not None and not open_system:
        from .warm import resolve_cache, warm_disabled, warm_solve

        if not warm_disabled():
            return warm_solve(
                system,
                query,
                cache=resolve_cache(warm_cache),
                max_nodes=max_nodes,
                time_limit=time_limit,
            )
    cls = OnTheFlySolver if on_the_fly else TwoPhaseSolver
    solver = cls(
        system,
        query,
        open_system=open_system,
        max_nodes=max_nodes,
        time_limit=time_limit,
    )
    return solver.solve()
