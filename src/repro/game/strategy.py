"""Winning strategies: extraction, runtime lookup, and printing.

A solved game (:class:`~repro.game.solver.GameResult`) induces a
state-based strategy (paper Def. 6): a partial function from semantic
states to ``Act_c ∪ {λ}``.  Concretely, per graph node we keep

* the **goal** federation — the game is already won there (``Done``);
* **action decisions** ``(step, edge, federation)`` — firing the
  controllable ``edge`` from a state of ``federation`` moves to a target
  state that entered the winning set at fixpoint step ``step``;
* everything else in the winning federation is implicit **wait** (λ).

Rank discipline: a concrete state's *rank* is the fixpoint step at which
it became winning; an action decision is only taken when its target-layer
step is strictly below the current rank.  Ranks strictly decrease along
both strategy actions and (by construction of the ``B``-term) opponent
moves, so supervised plays terminate in the goal — this is the
computational content of the paper's Theorem 11.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence

from ..dbm import DBM, Federation, INF, decode
from ..graph.explorer import GraphEdge, GraphNode
from ..semantics.state import ConcreteState
from ..semantics.system import DelayInterval, Move
from .solver import GameResult, NodeWin


# ----------------------------------------------------------------------
# Zone / delay geometry helpers
# ----------------------------------------------------------------------


def zone_delay_interval(zone: DBM, clocks: Sequence[Fraction]) -> Optional[DelayInterval]:
    """Delays ``d >= 0`` with ``clocks + d ∈ zone`` (None if never)."""
    if zone.is_empty():
        return None
    lo = Fraction(0)
    lo_strict = False
    hi: Optional[Fraction] = None
    hi_strict = False
    for i in range(zone.dim):
        for j in range(zone.dim):
            if i == j:
                continue
            enc = int(zone.m[i, j])
            if enc >= INF:
                continue
            value, strict = decode(enc)
            vi = clocks[i] if i else Fraction(0)
            vj = clocks[j] if j else Fraction(0)
            if i != 0 and j != 0:
                diff = vi - vj
                if diff > value or (diff == value and strict):
                    return None
                continue
            if j == 0:
                slack = Fraction(value) - vi
                if hi is None or slack < hi or (slack == hi and strict and not hi_strict):
                    hi, hi_strict = slack, strict
            else:
                need = -Fraction(value) - vj
                if need > lo or (need == lo and strict and not lo_strict):
                    lo, lo_strict = need, strict
    interval = DelayInterval(lo, lo_strict, hi, hi_strict)
    if interval.is_empty():
        return None
    return interval


def federation_delay_candidates(
    fed: Federation, clocks: Sequence[Fraction]
) -> List[Fraction]:
    """Representative positive delays entering each zone of a federation."""
    out: List[Fraction] = []
    for zone in fed.zones:
        interval = zone_delay_interval(zone, clocks)
        if interval is None:
            continue
        pick = interval.pick()
        if pick > 0:
            out.append(pick)
        elif interval.contains(Fraction(0)):
            out.append(Fraction(0))
    return out


# ----------------------------------------------------------------------
# Strategy data
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ActionDecision:
    step: int
    edge: GraphEdge
    fed: Federation

    @property
    def move(self) -> Move:
        return self.edge.move


@dataclass
class NodeStrategy:
    node: Optional[GraphNode]
    win: NodeWin
    actions: List[ActionDecision]

    @property
    def goal(self) -> Federation:
        return self.win.goal


class Verdictish:
    """Tags for strategy decisions."""

    DONE = "done"
    FIRE = "fire"
    WAIT = "wait"
    LOST = "lost"


@dataclass(frozen=True)
class Decision:
    kind: str
    move: Optional[Move] = None
    delay: Optional[Fraction] = None  # for WAIT: None = wait for the plant

    def __repr__(self) -> str:
        if self.kind == Verdictish.FIRE:
            return f"Decision(fire {self.move.label})"
        if self.kind == Verdictish.WAIT:
            return f"Decision(wait {self.delay})"
        return f"Decision({self.kind})"


class DecisionEngine:
    """The runtime decision procedure shared by synthesized strategies
    (:class:`Strategy`) and deserialized ones
    (:class:`repro.game.export.PackedStrategy`).

    Subclasses populate ``_by_key``: discrete-state key → node strategies.
    """

    system = None  # type: ignore[assignment]
    _by_key: Dict[tuple, List[NodeStrategy]]

    def _matching(self, state: ConcreteState) -> List[NodeStrategy]:
        return [
            ns
            for ns in self._by_key.get(state.key, ())
            if ns.win.win.contains(state.clocks)
        ]

    def rank(self, state: ConcreteState) -> Optional[int]:
        """The fixpoint step at which the state became winning."""
        ranks = [
            r
            for ns in self._matching(state)
            if (r := ns.win.rank_of(state.clocks)) is not None
        ]
        return min(ranks) if ranks else None

    def decide(self, state: ConcreteState) -> Decision:
        """The strategy's move at a concrete state (paper Def. 6 lookup)."""
        matching = self._matching(state)
        if not matching:
            return Decision(Verdictish.LOST)
        immediate = self._immediate(matching, state.clocks)
        if immediate is not None:
            return immediate
        # Wait: find the earliest future instant where an action (or goal)
        # decision applies, staying inside the winning set.
        candidates: List[Fraction] = []
        for ns in matching:
            candidates.extend(federation_delay_candidates(ns.goal, state.clocks))
            for decision in ns.actions:
                candidates.extend(
                    federation_delay_candidates(decision.fed, state.clocks)
                )
        for d in sorted(set(c for c in candidates if c > 0)):
            future = state.delayed(d)
            future_matching = self._matching(future)
            if not future_matching:
                continue
            if self._immediate(future_matching, future.clocks) is not None:
                return Decision(Verdictish.WAIT, delay=d)
        return Decision(Verdictish.WAIT, delay=None)

    def _immediate(
        self, matching: List[NodeStrategy], clocks: Sequence[Fraction]
    ) -> Optional[Decision]:
        for ns in matching:
            if ns.goal.contains(clocks):
                return Decision(Verdictish.DONE)
        best: Optional[ActionDecision] = None
        rank = None
        for ns in matching:
            node_rank = ns.win.rank_of(clocks)
            if node_rank is None:
                continue
            if rank is None or node_rank < rank:
                rank = node_rank
        if rank is None:
            return None
        for ns in matching:
            for decision in ns.actions:
                if decision.step >= rank:
                    continue
                if decision.fed.contains(clocks):
                    if best is None or decision.step < best.step:
                        best = decision
        if best is not None:
            return Decision(Verdictish.FIRE, move=best.move)
        return None


class Strategy(DecisionEngine):
    """A winning strategy over the solved game's symbolic state space."""

    def __init__(self, result: GameResult):
        if not result.winning:
            raise ValueError("cannot extract a strategy from a lost game")
        self.result = result
        self.system = result.graph.system
        self.per_node: Dict[int, NodeStrategy] = {}
        self._by_key: Dict[tuple, List[NodeStrategy]] = {}
        self._build()

    # ------------------------------------------------------------------

    def _build(self) -> None:
        graph = self.result.graph
        for node in graph.nodes:
            entry = self.result.wins.get(node.id)
            if entry is None or entry.win.is_empty():
                continue
            actions: List[ActionDecision] = []
            for edge in node.out_edges:
                if not edge.move.controllable:
                    continue
                target_entry = self.result.wins.get(edge.target.id)
                if target_entry is None:
                    continue
                for step, layer in target_entry.layers:
                    fed = self.system.pred(node.sym, edge.move, layer)
                    fed = fed.intersect(entry.win)
                    if not fed.is_empty():
                        actions.append(ActionDecision(step, edge, fed))
            actions.sort(key=lambda a: a.step)
            ns = NodeStrategy(node, entry, actions)
            self.per_node[node.id] = ns
            self._by_key.setdefault(node.key, []).append(ns)

    # ------------------------------------------------------------------
    # Introspection / printing (paper Fig. 5)
    # ------------------------------------------------------------------

    def describe(self, max_nodes: Optional[int] = None) -> str:
        """A human-readable rendering in the style of the paper's Fig. 5."""
        network = self.system.network
        names = network.clock_names()
        lines: List[str] = []
        count = 0
        for node in self.result.graph.nodes:
            ns = self.per_node.get(node.id)
            if ns is None:
                continue
            if max_nodes is not None and count >= max_nodes:
                lines.append(f"... ({len(self.per_node) - count} more states)")
                break
            count += 1
            locs = " ".join(network.location_names(node.sym.locs))
            lines.append(f"State: ( {locs} )")
            var_view = network.decls.state_to_dict(node.sym.vars)
            if var_view:
                lines.append(f"  vars: {var_view}")
            if not ns.goal.is_empty():
                lines.append(f"  While you are in ({ns.goal.to_string(names)}), goal reached.")
            for decision in ns.actions:
                _, edge = decision.edge.move.edges[0]
                sync = f"{decision.edge.move.label}" if decision.edge.move.label else "tau"
                lines.append(
                    f"  When you are in ({decision.fed.to_string(names)}),"
                    f" take transition {edge.automaton}.{edge.source} ->"
                    f" {edge.automaton}.{edge.target} {{{sync}}}"
                )
            waits = ns.win.win.subtract(ns.goal)
            for decision in ns.actions:
                waits = waits.subtract(decision.fed)
            if not waits.is_empty():
                lines.append(
                    f"  While you are in ({waits.to_string(names)}), wait."
                )
        return "\n".join(lines)

    @property
    def size(self) -> int:
        """Number of symbolic states with a decision (strategy size)."""
        return len(self.per_node)
