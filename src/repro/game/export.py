"""Strategy serialization — the paper's future-work item 2.

"Building a fully automated strategy-based testing environment, of which
a big concern is efficient strategy representation."  This module gives
winning strategies a compact, portable JSON form:

* zones serialize as their canonical integer matrices (with federation
  compaction applied first, so covered zones are dropped);
* moves serialize as ``(automaton index, edge position)`` pairs against a
  *model fingerprint*, so a strategy can only be loaded against the
  network it was synthesized for;
* loading reconstructs a :class:`PackedStrategy` whose ``decide`` is the
  same decision engine the synthesizer uses — test execution does not
  care which one it gets.

Typical round trip::

    data = strategy_to_dict(strategy)
    Path("strategy.json").write_text(json.dumps(data))
    ...
    packed = strategy_from_dict(System(network), json.loads(text))
    execute_test(packed, spec_plant, implementation)
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List

import numpy as np

from ..dbm import DBM, Federation
from ..semantics.system import Move, System
from .solver import NodeWin
from .strategy import ActionDecision, DecisionEngine, NodeStrategy, Strategy


class StrategyFormatError(ValueError):
    """Raised when loading malformed or mismatched strategy data."""


FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Zone / federation codecs
# ----------------------------------------------------------------------


def dbm_to_list(zone: DBM) -> List[int]:
    """Flatten a canonical DBM to a list of encoded bounds."""
    return [int(v) for v in zone.m.reshape(-1)]


def dbm_from_list(dim: int, values: List[int]) -> DBM:
    """Rebuild a canonical DBM from :func:`dbm_to_list` output."""
    if len(values) != dim * dim:
        raise StrategyFormatError("zone matrix has the wrong size")
    matrix = np.array(values, dtype=np.int64).reshape(dim, dim)
    return DBM(matrix)


def federation_to_obj(fed: Federation) -> List[List[int]]:
    """Serialize a federation (compacted) as lists of encoded bounds."""
    return [dbm_to_list(z) for z in fed.compact().zones]


def federation_from_obj(dim: int, obj: List[List[int]]) -> Federation:
    """Rebuild a federation from :func:`federation_to_obj` output."""
    return Federation(dim, [dbm_from_list(dim, zone) for zone in obj])


# ----------------------------------------------------------------------
# Model fingerprint
# ----------------------------------------------------------------------


def model_fingerprint(system: System) -> str:
    """A digest of the network structure a strategy is valid against."""
    hasher = hashlib.sha256()
    network = system.network
    hasher.update(network.name.encode())
    for automaton in network.automata:
        hasher.update(automaton.name.encode())
        for loc in automaton.location_list:
            hasher.update(
                f"{loc.name}|{loc.invariant}|{loc.committed}|{loc.urgent}".encode()
            )
        for edge in automaton.edges:
            hasher.update(edge.describe().encode())
    for name in sorted(network.channels):
        hasher.update(f"{name}:{network.channels[name].kind}".encode())
    return hasher.hexdigest()[:16]


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------


def _edge_position(system: System, a_idx: int, edge) -> int:
    return system.automata[a_idx].edges.index(edge)


def _move_to_obj(system: System, move: Move) -> dict:
    return {
        "label": move.label,
        "direction": move.direction,
        "controllable": move.controllable,
        "edges": [
            [a_idx, _edge_position(system, a_idx, edge)]
            for a_idx, edge in move.edges
        ],
    }


def _move_from_obj(system: System, obj: dict) -> Move:
    edges = tuple(
        (a_idx, system.automata[a_idx].edges[pos]) for a_idx, pos in obj["edges"]
    )
    return Move(obj["label"], obj["direction"], obj["controllable"], edges)


def strategy_to_dict(strategy: Strategy) -> dict:
    """Serialize a synthesized strategy to plain JSON-compatible data."""
    system = strategy.system
    dim = system.dim
    nodes = []
    for ns in strategy.per_node.values():
        nodes.append(
            {
                "locs": list(ns.node.sym.locs),
                "vars": list(ns.node.sym.vars),
                "win": federation_to_obj(ns.win.win),
                "goal": federation_to_obj(ns.win.goal),
                "layers": [
                    [step, federation_to_obj(fed)] for step, fed in ns.win.layers
                ],
                "actions": [
                    {
                        "step": decision.step,
                        "move": _move_to_obj(system, decision.move),
                        "fed": federation_to_obj(decision.fed),
                    }
                    for decision in ns.actions
                ],
            }
        )
    return {
        "format": FORMAT_VERSION,
        "model": system.network.name,
        "fingerprint": model_fingerprint(system),
        "dim": dim,
        "nodes": nodes,
    }


class _PackedAction(ActionDecision):
    """An action decision carrying a reconstructed move (no graph edge)."""

    def __init__(self, step: int, move: Move, fed: Federation):
        object.__setattr__(self, "step", step)
        object.__setattr__(self, "edge", None)
        object.__setattr__(self, "fed", fed)
        object.__setattr__(self, "_move", move)

    @property
    def move(self) -> Move:
        return self._move


class PackedStrategy(DecisionEngine):
    """A strategy reconstructed from serialized data.

    Exposes the same runtime interface as :class:`Strategy` (``decide``,
    ``rank``, ``system``, ``size``), so the test executor accepts it
    unchanged.
    """

    def __init__(self, system: System, nodes: List[NodeStrategy]):
        self.system = system
        self.per_node: Dict[int, NodeStrategy] = dict(enumerate(nodes))
        self._by_key: Dict[tuple, List[NodeStrategy]] = {}
        self._keys: List[tuple] = []
        for idx, ns in enumerate(nodes):
            key = ns.win.key  # type: ignore[attr-defined]
            self._by_key.setdefault(key, []).append(ns)

    @property
    def size(self) -> int:
        return len(self.per_node)


def strategy_from_dict(system: System, data: dict) -> PackedStrategy:
    """Reconstruct a strategy against the network it was saved from."""
    if data.get("format") != FORMAT_VERSION:
        raise StrategyFormatError(
            f"unsupported strategy format {data.get('format')!r}"
        )
    expected = model_fingerprint(system)
    if data.get("fingerprint") != expected:
        raise StrategyFormatError(
            "strategy fingerprint does not match the network: the strategy"
            " was synthesized for a different (or modified) model"
        )
    dim = data["dim"]
    if dim != system.dim:
        raise StrategyFormatError("clock count mismatch")
    nodes = []
    for obj in data["nodes"]:
        win = NodeWin(
            federation_from_obj(dim, obj["win"]),
            federation_from_obj(dim, obj["goal"]),
            [
                (step, federation_from_obj(dim, fed))
                for step, fed in obj["layers"]
            ],
        )
        win.key = (tuple(obj["locs"]), tuple(obj["vars"]))  # type: ignore[attr-defined]
        actions = [
            _PackedAction(
                a["step"],
                _move_from_obj(system, a["move"]),
                federation_from_obj(dim, a["fed"]),
            )
            for a in obj["actions"]
        ]
        actions.sort(key=lambda a: a.step)
        nodes.append(NodeStrategy(None, win, actions))
    return PackedStrategy(system, nodes)


def save_strategy(strategy: Strategy, path) -> None:
    """Write a strategy to a JSON file."""
    with open(path, "w") as handle:
        json.dump(strategy_to_dict(strategy), handle)


def load_strategy(system: System, path) -> PackedStrategy:
    """Load a strategy JSON file against its network."""
    with open(path) as handle:
        data = json.load(handle)
    return strategy_from_dict(system, data)
