"""The safe-timed-predecessor operator ``Predt``.

``Predt(G, B)`` is the set of states from which the controller can delay
into the target set ``G`` while avoiding the opponent-bad set ``B`` on the
way.  Two arrival conventions are needed (see DESIGN.md):

* **strict** (``[0, δ]``) — every point of the delay *including the
  arrival instant* must avoid ``B``.  Used when the arrival is followed by
  a controller action: if the opponent can act at the same instant, the
  tie is resolved adversarially.
* **lenient** (``[0, δ)``) — the arrival instant itself may touch ``B``.
  Used when arriving *in* the goal (the run has already won) or in a
  forced-move state.

Identities used (derived and property-tested in ``tests/test_predt.py``)::

    Predt(∪_i g_i, b)  = ∪_i Predt(g_i, b)
    Predt(G, ∪_j b_j)  = ∩_j Predt(G, b_j)       (blocked-delay intervals
                                                   are totally ordered)
    strict  (g, b) = (g↓ \\ b↓) ∪ ((g ∩ b↓) \\ b)↓
    lenient (g, b) = (g↓ \\ b↓) ∪ ((g ∩ b↓) \\ up_strict(b))↓
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..dbm import DBM, Federation, INF


def up_strict(zone: DBM) -> DBM:
    """``{v + d | v ∈ zone, d > 0}``: the strict future of a zone."""
    if zone.is_empty():
        return zone
    m = zone.m.copy()
    m[1:, 0] = INF
    # Make every lower bound strict: (value, <=) becomes (value, <).
    row = m[0, 1:]
    m[0, 1:] = np.where(row < INF, row & ~np.int64(1), row)
    return DBM(m)  # removing uppers / stricter lowers preserves canonicity


def predt(goal: Federation, bad: Federation, *, lenient: bool = False) -> Federation:
    """``Predt(goal, bad)`` over federations.

    With ``lenient=True`` the arrival instant may coincide with ``bad``
    (use for goal / forced-move targets); the start instant must avoid
    ``bad`` either way unless the delay is zero and ``lenient`` holds.

    Works federation-at-a-time: ``Predt(∪_i g_i, b) = ∪_i Predt(g_i, b)``
    lets the per-goal-zone loop collapse into batched federation kernels,
    with ``goal↓`` computed once and shared across all bad zones.
    """
    if goal.is_empty():
        return goal
    goal_down = goal.down()
    if bad.is_empty():
        return goal_down
    result: Optional[Federation] = None
    for b in bad.zones:
        b_down = b.down()
        acc = goal_down.subtract_dbm(b_down)
        overlap = goal.intersect_zone(b_down)
        if not overlap.is_empty():
            blocker = up_strict(b) if lenient else b
            acc = acc.union(overlap.subtract_dbm(blocker).down())
        if lenient:
            # Zero-delay arrival in the goal always wins under [0, δ).
            acc = acc.union(goal)
        result = acc if result is None else result.intersect(acc)
        if result.is_empty():
            break
    return result


def predt_mixed(
    action_targets: Federation,
    goal_targets: Federation,
    bad: Federation,
) -> Federation:
    """Union of strict-arrival and lenient-arrival Predt components."""
    result = predt(action_targets, bad, lenient=False)
    lenient_part = predt(goal_targets, bad, lenient=True)
    return result.union(lenient_part)
