"""DBM kernel: encoded bounds, canonical DBMs, and federations of zones."""

from .bounds import (
    INF,
    LE_ZERO,
    LT_ZERO,
    add_bounds,
    bound,
    bound_as_string,
    bound_value,
    decode,
    is_strict,
    le,
    lt,
    negate,
    satisfies,
)
from .dbm import DBM, Constraint
from .federation import Federation, subtract_zone
from .minform import minimal_constraints, verified_minimal_constraints

__all__ = [
    "INF",
    "LE_ZERO",
    "LT_ZERO",
    "add_bounds",
    "bound",
    "bound_as_string",
    "bound_value",
    "decode",
    "is_strict",
    "le",
    "lt",
    "negate",
    "satisfies",
    "DBM",
    "Constraint",
    "Federation",
    "subtract_zone",
    "minimal_constraints",
    "verified_minimal_constraints",
]
