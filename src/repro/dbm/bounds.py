"""Encoded difference bounds for DBMs.

A difference bound is a pair ``(b, strictness)`` meaning ``x - y < b`` or
``x - y <= b``.  Following the classic UPPAAL encoding, a bound is stored in
a single integer::

    enc = (b << 1) | (1 if non-strict (<=) else 0)

so that the natural integer order on encodings coincides with the bound
order (a smaller encoding is a tighter constraint), and the unbounded case
is a large sentinel ``INF``.  Addition of bounds (used by Floyd-Warshall
closure) is ``(b1 + b2, <= iff both <=)``, implemented on encodings by
``add_bounds``.
"""

from __future__ import annotations

from typing import Tuple

#: Sentinel for "no constraint" (x - y < infinity).  Large enough that no
#: model constant can reach it, small enough that sums never overflow int64.
INF = 1 << 40

#: Largest absolute model constant a clock may be compared against or
#: assigned.  Enforced where constants are encoded (ClockAtom and the
#: helpers below); keeps the drift-tolerant closure sound (see INF_SOFT).
MAX_BOUND_CONST = 1 << 30

#: Drift threshold for the closure kernels: they add bounds *without*
#: per-step INF masking (an INF summed with finite negatives "drifts"
#: below INF) and clamp every entry >= INF_SOFT back to exactly INF once
#: at the end.  Soundness needs (a) drifted infinities to stay above the
#: threshold and (b) finite path bounds to stay below it.  Per closure,
#: drift and finite growth are each bounded by dim * max|encoding|
#: <= dim * 2 * MAX_BOUND_CONST = dim * 2^31, so with the enforced
#: constant cap both hold for dim <= 256: dim * 2^31 <= 2^39 = INF_SOFT
#: = INF - INF_SOFT.  (Clamping after every operation means drift never
#: accumulates across operations.)
INF_SOFT = INF >> 1

#: Encoding of the bound (0, <=): the tightest bound compatible with x == y.
LE_ZERO = 1

#: Encoding of the bound (0, <): used for strict non-negativity.
LT_ZERO = 0


def check_const(value: int) -> int:
    """Validate a model constant against :data:`MAX_BOUND_CONST`."""
    if not -MAX_BOUND_CONST <= value <= MAX_BOUND_CONST:
        raise ValueError(
            f"clock bound constant {value} exceeds the supported range"
            f" ±{MAX_BOUND_CONST} (see repro.dbm.bounds.MAX_BOUND_CONST)"
        )
    return value


def bound(value: int, strict: bool) -> int:
    """Encode the bound ``x - y < value`` (strict) or ``x - y <= value``."""
    return (check_const(value) << 1) | (0 if strict else 1)


def le(value: int) -> int:
    """Encode ``<= value``."""
    return (check_const(value) << 1) | 1


def lt(value: int) -> int:
    """Encode ``< value``."""
    return check_const(value) << 1


def bound_value(enc: int) -> int:
    """The integer constant of an encoded bound (undefined for INF)."""
    return enc >> 1


def is_strict(enc: int) -> bool:
    """True if the encoded bound is strict (``<``)."""
    return (enc & 1) == 0


def decode(enc: int) -> Tuple[int, bool]:
    """Decode to ``(value, strict)``; INF decodes to ``(INF >> 1, True)``."""
    return enc >> 1, (enc & 1) == 0


def add_bounds(a: int, b: int) -> int:
    """Sum of two encoded bounds, saturating at INF.

    ``(b1, s1) + (b2, s2) = (b1 + b2, strict if either is strict)``.
    """
    if a >= INF or b >= INF:
        return INF
    return ((a >> 1) + (b >> 1) << 1) | (a & b & 1)


def negate(enc: int) -> int:
    """Encoded negation: the complement of ``x - y ≺ b`` is ``y - x ≺' -b``.

    ``not (x - y <= b)`` is ``y - x < -b``; ``not (x - y < b)`` is
    ``y - x <= -b``.  Undefined for INF (the complement of "true" is empty).
    """
    if enc >= INF:
        raise ValueError("cannot negate an infinite bound")
    value, strict = decode(enc)
    return bound(-value, not strict)


def bound_as_string(enc: int, lhs: str = "x", rhs: str = "") -> str:
    """Human-readable form, e.g. ``x - y <= 3`` or ``x < 5``."""
    if enc >= INF:
        return f"{lhs}{' - ' + rhs if rhs else ''} < inf"
    value, strict = decode(enc)
    op = "<" if strict else "<="
    left = f"{lhs} - {rhs}" if rhs else lhs
    return f"{left} {op} {value}"


def satisfies(difference, enc: int) -> bool:
    """Whether a concrete difference (int/float/Fraction) satisfies a bound."""
    if enc >= INF:
        return True
    value, strict = decode(enc)
    return difference < value if strict else difference <= value
