"""Encoded difference bounds for DBMs.

A difference bound is a pair ``(b, strictness)`` meaning ``x - y < b`` or
``x - y <= b``.  Following the classic UPPAAL encoding, a bound is stored in
a single integer::

    enc = (b << 1) | (1 if non-strict (<=) else 0)

so that the natural integer order on encodings coincides with the bound
order (a smaller encoding is a tighter constraint), and the unbounded case
is a large sentinel ``INF``.  Addition of bounds (used by Floyd-Warshall
closure) is ``(b1 + b2, <= iff both <=)``, implemented on encodings by
``add_bounds``.
"""

from __future__ import annotations

from typing import Tuple

#: Sentinel for "no constraint" (x - y < infinity).  Large enough that no
#: model constant can reach it, small enough that sums never overflow int64.
INF = 1 << 40

#: Encoding of the bound (0, <=): the tightest bound compatible with x == y.
LE_ZERO = 1

#: Encoding of the bound (0, <): used for strict non-negativity.
LT_ZERO = 0


def bound(value: int, strict: bool) -> int:
    """Encode the bound ``x - y < value`` (strict) or ``x - y <= value``."""
    return (value << 1) | (0 if strict else 1)


def le(value: int) -> int:
    """Encode ``<= value``."""
    return (value << 1) | 1


def lt(value: int) -> int:
    """Encode ``< value``."""
    return value << 1


def bound_value(enc: int) -> int:
    """The integer constant of an encoded bound (undefined for INF)."""
    return enc >> 1


def is_strict(enc: int) -> bool:
    """True if the encoded bound is strict (``<``)."""
    return (enc & 1) == 0


def decode(enc: int) -> Tuple[int, bool]:
    """Decode to ``(value, strict)``; INF decodes to ``(INF >> 1, True)``."""
    return enc >> 1, (enc & 1) == 0


def add_bounds(a: int, b: int) -> int:
    """Sum of two encoded bounds, saturating at INF.

    ``(b1, s1) + (b2, s2) = (b1 + b2, strict if either is strict)``.
    """
    if a >= INF or b >= INF:
        return INF
    return ((a >> 1) + (b >> 1) << 1) | (a & b & 1)


def negate(enc: int) -> int:
    """Encoded negation: the complement of ``x - y ≺ b`` is ``y - x ≺' -b``.

    ``not (x - y <= b)`` is ``y - x < -b``; ``not (x - y < b)`` is
    ``y - x <= -b``.  Undefined for INF (the complement of "true" is empty).
    """
    if enc >= INF:
        raise ValueError("cannot negate an infinite bound")
    value, strict = decode(enc)
    return bound(-value, not strict)


def bound_as_string(enc: int, lhs: str = "x", rhs: str = "") -> str:
    """Human-readable form, e.g. ``x - y <= 3`` or ``x < 5``."""
    if enc >= INF:
        return f"{lhs}{' - ' + rhs if rhs else ''} < inf"
    value, strict = decode(enc)
    op = "<" if strict else "<="
    left = f"{lhs} - {rhs}" if rhs else lhs
    return f"{left} {op} {value}"


def satisfies(difference, enc: int) -> bool:
    """Whether a concrete difference (int/float/Fraction) satisfies a bound."""
    if enc >= INF:
        return True
    value, strict = decode(enc)
    return difference < value if strict else difference <= value
