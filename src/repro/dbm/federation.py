"""Federations: finite unions of DBM zones.

A :class:`Federation` represents a (possibly non-convex) set of clock
valuations as a list of nonempty canonical DBMs.  The list is kept small
by subsumption reduction (zones contained in a sibling zone are dropped)
but is not guaranteed minimal; set-level comparisons (:meth:`includes`,
:meth:`equals`) are exact, via zone subtraction.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

from .bounds import INF, negate
from .dbm import DBM


def subtract_zone(a: DBM, b: DBM) -> List[DBM]:
    """``a \\ b`` as a list of disjoint nonempty zones.

    Splits ``a`` on each constraint of ``b``: the part of ``a`` violating
    the constraint is carved off, the remainder continues to the next
    constraint.  Uses the cheap negative-cycle pre-test to avoid closing
    empty pieces.
    """
    if a.is_empty():
        return []
    if b.is_empty():
        return [a]
    if b.includes(a):
        return []
    pieces: List[DBM] = []
    rem = a
    for i, j, enc in b.nontrivial_constraints():
        if enc >= INF:
            continue
        neg = negate(enc)
        if not rem.would_be_empty_after(j, i, neg):
            piece = rem.tighten(j, i, neg)
            if not piece.is_empty():
                pieces.append(piece)
        rem = rem.tighten(i, j, enc)
        if rem.is_empty():
            break
    return pieces


class Federation:
    """An immutable union of convex zones over a common clock set."""

    __slots__ = ("dim", "zones")

    def __init__(self, dim: int, zones: Iterable[DBM] = ()):
        self.dim = dim
        self.zones: List[DBM] = _reduce([z for z in zones if not z.is_empty()])

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls, dim: int) -> "Federation":
        return cls(dim, ())

    @classmethod
    def universal(cls, dim: int) -> "Federation":
        return cls(dim, (DBM.universal(dim),))

    @classmethod
    def from_zone(cls, zone: DBM) -> "Federation":
        return cls(zone.dim, (zone,))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def is_empty(self) -> bool:
        """True iff the federation denotes the empty set."""
        return not self.zones

    def __bool__(self) -> bool:
        return bool(self.zones)

    def __len__(self) -> int:
        return len(self.zones)

    def __iter__(self):
        return iter(self.zones)

    def contains(self, valuation) -> bool:
        """Whether a concrete valuation lies in some member zone."""
        return any(z.contains(valuation) for z in self.zones)

    def sample(self):
        """A rational point of the federation (None if empty)."""
        if not self.zones:
            return None
        return self.zones[0].sample()

    def sample_random(self, rng):
        """A random rational point of a random member zone (None if empty)."""
        if not self.zones:
            return None
        return rng.choice(self.zones).sample_random(rng)

    def includes(self, other: "Federation") -> bool:
        """Exact set inclusion ``other ⊆ self``."""
        for zone in other.zones:
            leftover = [zone]
            for mine in self.zones:
                next_leftover: List[DBM] = []
                for piece in leftover:
                    next_leftover.extend(subtract_zone(piece, mine))
                leftover = next_leftover
                if not leftover:
                    break
            if leftover:
                return False
        return True

    def includes_zone(self, zone: DBM) -> bool:
        """Exact test ``zone ⊆ self``."""
        return self.includes(Federation.from_zone(zone))

    def equals(self, other: "Federation") -> bool:
        """Exact set equality (mutual inclusion)."""
        return self.includes(other) and other.includes(self)

    def intersects(self, other: "Federation") -> bool:
        """Whether the two federations share at least one point."""
        return any(a.intersects(b) for a in self.zones for b in other.zones)

    def hash_key(self) -> bytes:
        """An order-insensitive bytes key over the member zones."""
        keys = sorted(z.hash_key() for z in self.zones)
        return b"|".join(keys)

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------

    def union(self, other: "Federation") -> "Federation":
        """Set union (with cheap pairwise subsumption reduction)."""
        if not other.zones:
            return self
        if not self.zones:
            return other
        return Federation(self.dim, self.zones + other.zones)

    def union_zone(self, zone: DBM) -> "Federation":
        """Union with a single zone."""
        if zone.is_empty():
            return self
        return Federation(self.dim, self.zones + [zone])

    def intersect(self, other: "Federation") -> "Federation":
        """Set intersection (pairwise over member zones)."""
        out: List[DBM] = []
        for a in self.zones:
            for b in other.zones:
                c = a.intersect(b)
                if not c.is_empty():
                    out.append(c)
        return Federation(self.dim, out)

    def intersect_zone(self, zone: DBM) -> "Federation":
        """Intersection with a single zone."""
        out = []
        for a in self.zones:
            c = a.intersect(zone)
            if not c.is_empty():
                out.append(c)
        return Federation(self.dim, out)

    def subtract_dbm(self, zone: DBM) -> "Federation":
        """Set difference ``self \\ zone`` (exact, possibly more zones)."""
        out: List[DBM] = []
        for a in self.zones:
            out.extend(subtract_zone(a, zone))
        return Federation(self.dim, out)

    def subtract(self, other: "Federation") -> "Federation":
        """Set difference ``self \\ other`` (exact)."""
        result = self
        for zone in other.zones:
            result = result.subtract_dbm(zone)
            if result.is_empty():
                break
        return result

    def complement_within(self, universe: DBM) -> "Federation":
        """``universe \\ self``."""
        return Federation.from_zone(universe).subtract(self)

    # ------------------------------------------------------------------
    # Timed operators (zone-wise maps)
    # ------------------------------------------------------------------

    def _map(self, fn: Callable[[DBM], DBM]) -> "Federation":
        return Federation(self.dim, (fn(z) for z in self.zones))

    def up(self) -> "Federation":
        """Delay successors of every member zone."""
        return self._map(lambda z: z.up())

    def down(self) -> "Federation":
        """Delay predecessors of every member zone."""
        return self._map(lambda z: z.down())

    def reset(self, clocks: Sequence[int]) -> "Federation":
        """Reset the given clocks to 0 in every member zone."""
        return self._map(lambda z: z.reset(clocks))

    def free(self, clocks: Sequence[int]) -> "Federation":
        """Drop all constraints on the given clocks."""
        return self._map(lambda z: z.free(clocks))

    def reset_pred(self, clocks: Sequence[int]) -> "Federation":
        """Pre-image of a reset-to-zero of the given clocks."""
        return self._map(lambda z: z.reset_pred(clocks))

    def assign_clocks(self, pairs) -> "Federation":
        """Assign constants to clocks in every member zone."""
        return self._map(lambda z: z.assign_clocks(pairs))

    def assign_pred(self, pairs) -> "Federation":
        """Pre-image of constant clock assignments."""
        return self._map(lambda z: z.assign_pred(pairs))

    def constrained(self, constraints) -> "Federation":
        """Intersect every member zone with encoded constraints."""
        return self._map(lambda z: z.constrained(constraints))

    def extrapolate(self, max_consts: Sequence[int]) -> "Federation":
        """ExtraM extrapolation of every member zone."""
        return self._map(lambda z: z.extrapolate(max_consts))

    def compact(self) -> "Federation":
        """Drop zones covered by the union of the remaining zones (exact)."""
        kept: List[DBM] = list(self.zones)
        changed = True
        while changed:
            changed = False
            for idx, zone in enumerate(kept):
                rest = Federation(self.dim, kept[:idx] + kept[idx + 1 :])
                if rest.includes_zone(zone):
                    kept.pop(idx)
                    changed = True
                    break
        out = Federation.empty(self.dim)
        out.zones = kept
        return out

    # ------------------------------------------------------------------
    # Printing
    # ------------------------------------------------------------------

    def to_string(self, names: Optional[Sequence[str]] = None) -> str:
        """Human-readable disjunction of the member zones."""
        if not self.zones:
            return "false"
        parts = [z.to_string(names) for z in self.zones]
        if len(parts) == 1:
            return parts[0]
        return " || ".join(f"({p})" for p in parts)

    def __repr__(self) -> str:
        return f"Federation({self.to_string()})"


def _reduce(zones: List[DBM]) -> List[DBM]:
    """Drop zones pairwise included in another zone (cheap reduction)."""
    kept: List[DBM] = []
    for zone in zones:
        dominated = False
        for idx, other in enumerate(kept):
            if other.includes(zone):
                dominated = True
                break
        if dominated:
            continue
        kept = [k for k in kept if not zone.includes(k)]
        kept.append(zone)
    return kept
