"""Federations: finite unions of DBM zones.

A :class:`Federation` represents a (possibly non-convex) set of clock
valuations as a list of nonempty canonical DBMs.  The list is kept small
by subsumption reduction (zones contained in a sibling zone are dropped)
but is not guaranteed minimal; set-level comparisons (:meth:`includes`,
:meth:`equals`) are exact, via zone subtraction.

DESIGN — the stacked representation
===================================

The public API hands out per-zone :class:`~repro.dbm.dbm.DBM` objects
(``fed.zones``), but internally every bulk operation runs on the *stack*:
the members' matrices gathered into one ``(k, dim, dim)`` int64 array
(:mod:`repro.dbm.stack`).  At game dimensions (dim <= 8) the cost of a
per-zone numpy call is dominated by allocation and Python dispatch, so
``up``/``down``/``reset``/``free``/``constrained``/``extrapolate``/
``intersect`` each make **one** batched kernel call — a single
Floyd-Warshall sweep closes every member at once — and subsumption
reduction is one broadcast ``all(a >= b)`` comparison over all pairs
instead of O(k^2) Python-level ``includes`` calls.  The zones handed
back out are views into the result stack, so no per-zone copies are made
either.

When are the subsumption pre-filters exact?  Pointwise matrix comparison
(``stack.inclusion_matrix``) decides ``a ⊆ b`` *exactly* when both sides
are single canonical zones — that is what reduction and the
``includes``/``subtract`` pre-filters rely on.  It is only *sufficient*
(never necessary) evidence for inclusion in a **union** of zones: a zone
can be covered by several siblings jointly without being inside any one
of them.  So :meth:`includes`, :meth:`subtract` and :meth:`compact`
first discharge the cheap pointwise cases in bulk and fall back to exact
zone subtraction — whose answer is definitive — only for the leftovers.
Disjointness (``stack.disjoint_mask``) is exact in both roles and prunes
the subtraction loops further.

Hybrid dispatch: below ``stack.batch_min()`` member zones the per-zone
DBM path is used instead — at one or two members the stacked kernel's
fixed cost (gather, masks, re-wrap) exceeds the dispatch overhead it
amortizes, and solver federations on near-convex models stay that
small.  Federation ops are all comparison-style (cheap scalar
fallback), so the threshold is backend-independent; ``REPRO_BATCH_MIN``
overrides it.
Every decision is recorded (``federation.batched_dispatch`` /
``federation.scalar_dispatch``).  Both paths compute the same sets; the
differential kernel tests drive each op through both and assert
extensional equality.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from ..util import counters
from . import stack as _sk
from .bounds import INF, LE_ZERO, negate
from .dbm import DBM

def _use_batched(batched: bool) -> bool:
    """Record a batched-vs-scalar dispatch decision as it is made.

    The threshold itself lives in :func:`repro.dbm.stack.batch_min`
    (numpy-tuned default, ``REPRO_BATCH_MIN`` override); benchmarks
    surface these counters in ``extra_info`` so a result always says
    which path actually ran.
    """
    if batched:
        counters.inc("federation.batched_dispatch")
    else:
        counters.inc("federation.scalar_dispatch")
    return batched


def subtract_zone(a: DBM, b: DBM) -> List[DBM]:
    """``a \\ b`` as a list of disjoint nonempty zones.

    Splits ``a`` on each constraint of ``b``: the part of ``a`` violating
    the constraint is carved off, the remainder continues to the next
    constraint.  Uses the cheap negative-cycle pre-test to avoid closing
    empty pieces.
    """
    if a.is_empty():
        return []
    if b.is_empty():
        return [a]
    if b.includes(a):
        return []
    if a.disjoint_from(b):
        return [a]
    counters.inc("federation.zone_subtractions")
    pieces: List[DBM] = []
    rem = a
    for i, j, enc in b.nontrivial_constraints():
        if enc >= INF:
            continue
        neg = negate(enc)
        if not rem.would_be_empty_after(j, i, neg):
            piece = rem.tighten(j, i, neg)
            if not piece.is_empty():
                pieces.append(piece)
        rem = rem.tighten(i, j, enc)
        if rem.is_empty():
            break
    return pieces


class Federation:
    """An immutable union of convex zones over a common clock set."""

    __slots__ = ("dim", "zones", "_hash_key")

    def __init__(self, dim: int, zones: Iterable[DBM] = ()):
        self.dim = dim
        kept = [z for z in zones if not z.is_empty()]
        self.zones: List[DBM] = _reduce(kept) if len(kept) > 1 else kept
        self._hash_key: Optional[bytes] = None
        counters.observe("federation.zones", len(self.zones))

    @classmethod
    def _wrap(cls, dim: int, zones: List[DBM]) -> "Federation":
        """Adopt an already-reduced zone list without re-reducing."""
        fed = cls.__new__(cls)
        fed.dim = dim
        fed.zones = zones
        fed._hash_key = None
        return fed

    def _stack(self) -> np.ndarray:
        """The members' matrices as one ``(k, dim, dim)`` array (a copy)."""
        return _sk.stack_of(self.zones)

    @classmethod
    def _from_stack(
        cls, dim: int, stacked: np.ndarray, keep: Optional[np.ndarray] = None
    ) -> "Federation":
        """Wrap surviving stack rows as zones (views, no copies) and reduce."""
        if keep is None:
            rows = range(stacked.shape[0])
        else:
            rows = np.flatnonzero(keep)
        return cls(dim, [DBM(stacked[i]) for i in rows])

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls, dim: int) -> "Federation":
        return cls(dim, ())

    @classmethod
    def universal(cls, dim: int) -> "Federation":
        return cls(dim, (DBM.universal(dim),))

    @classmethod
    def from_zone(cls, zone: DBM) -> "Federation":
        return cls(zone.dim, (zone,))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def is_empty(self) -> bool:
        """True iff the federation denotes the empty set."""
        return not self.zones

    def __bool__(self) -> bool:
        return bool(self.zones)

    def __len__(self) -> int:
        return len(self.zones)

    def __iter__(self):
        return iter(self.zones)

    def contains(self, valuation) -> bool:
        """Whether a concrete valuation lies in some member zone."""
        return any(z.contains(valuation) for z in self.zones)

    def sample(self):
        """A rational point of the federation (None if empty)."""
        if not self.zones:
            return None
        return self.zones[0].sample()

    def sample_random(self, rng):
        """A random rational point of a random member zone (None if empty)."""
        if not self.zones:
            return None
        return rng.choice(self.zones).sample_random(rng)

    def includes(self, other: "Federation") -> bool:
        """Exact set inclusion ``other ⊆ self``."""
        if not other.zones:
            return True
        if not self.zones:
            return False
        if len(self.zones) == 1:
            # Inclusion in a single convex zone is pointwise, hence exact.
            mine = self.zones[0]
            return all(mine.includes(z) for z in other.zones)
        # Pre-filter: zones of `other` pointwise-included in a single zone
        # of `self` need no subtraction (exact per pair of convex zones).
        if not _use_batched(
            len(self.zones) + len(other.zones) >= 2 * _sk.batch_min()
        ):
            for zone in other.zones:
                if any(mine.includes(zone) for mine in self.zones):
                    continue
                counters.inc("federation.includes_exact_fallbacks")
                if not self._covers_zone(zone):
                    return False
            return True
        mine_stack = self._stack()
        theirs = other._stack()
        covered = _sk.inclusion_matrix(mine_stack, theirs).any(axis=0)
        if covered.all():
            counters.inc("federation.includes_prefilter_hits")
            return True
        counters.inc("federation.includes_exact_fallbacks")
        for idx in np.flatnonzero(~covered):
            if not self._covers_zone(other.zones[idx]):
                return False
        return True

    def _covers_zone(self, zone: DBM) -> bool:
        """Exact test ``zone ⊆ union(self.zones)`` via subtraction."""
        leftover = [zone]
        for mine in self.zones:
            next_leftover: List[DBM] = []
            for piece in leftover:
                next_leftover.extend(subtract_zone(piece, mine))
            leftover = next_leftover
            if not leftover:
                return True
        return not leftover

    def includes_zone(self, zone: DBM) -> bool:
        """Exact test ``zone ⊆ self``."""
        if zone.is_empty():
            return True
        if not self.zones:
            return False
        for mine in self.zones:
            if mine.includes(zone):
                return True
        return self._covers_zone(zone)

    def equals(self, other: "Federation") -> bool:
        """Exact set equality (mutual inclusion)."""
        if self.hash_key() == other.hash_key():
            return True  # identical reduced zone sets
        return self.includes(other) and other.includes(self)

    def intersects(self, other: "Federation") -> bool:
        """Whether the two federations share at least one point."""
        return any(a.intersects(b) for a in self.zones for b in other.zones)

    def hash_key(self) -> bytes:
        """An order-insensitive bytes key over the member zones (memoized)."""
        if self._hash_key is None:
            keys = sorted(z.hash_key() for z in self.zones)
            self._hash_key = b"|".join(keys)
        return self._hash_key

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------

    def union(self, other: "Federation") -> "Federation":
        """Set union (with cheap pairwise subsumption reduction)."""
        if not other.zones:
            return self
        if not self.zones:
            return other
        return Federation(self.dim, self.zones + other.zones)

    def union_zone(self, zone: DBM) -> "Federation":
        """Union with a single zone."""
        if zone.is_empty():
            return self
        return Federation(self.dim, self.zones + [zone])

    def intersect(self, other: "Federation") -> "Federation":
        """Set intersection (pairwise over member zones, batched when
        the pair count is large enough to amortize one stacked closure)."""
        if not self.zones or not other.zones:
            return Federation.empty(self.dim)
        bm = _sk.batch_min()
        if not _use_batched(len(self.zones) * len(other.zones) >= bm * bm):
            out: List[DBM] = []
            for a in self.zones:
                for b in other.zones:
                    c = a.intersect(b)
                    if not c.is_empty():
                        out.append(c)
            return Federation(self.dim, out)
        stacked, keep = _sk.pairwise_intersect(self._stack(), other._stack())
        return Federation._from_stack(self.dim, stacked, keep)

    def intersect_zone(self, zone: DBM) -> "Federation":
        """Intersection with a single zone."""
        if zone.is_empty() or not self.zones:
            return Federation.empty(self.dim)
        if not _use_batched(len(self.zones) >= _sk.batch_min()):
            out = []
            for a in self.zones:
                c = a.intersect(zone)
                if not c.is_empty():
                    out.append(c)
            return Federation(self.dim, out)
        stacked = self._stack()
        keep = _sk.intersect_zone(stacked, zone.m)
        return Federation._from_stack(self.dim, stacked, keep)

    def subtract_dbm(self, zone: DBM) -> "Federation":
        """Set difference ``self \\ zone`` (exact, possibly more zones)."""
        if zone.is_empty() or not self.zones:
            return self
        if not _use_batched(len(self.zones) >= _sk.batch_min()):
            out: List[DBM] = []
            changed = False
            for a in self.zones:
                pieces = subtract_zone(a, zone)
                out.extend(pieces)
                changed = changed or len(pieces) != 1 or pieces[0] is not a
            if not changed:
                return self
            return Federation(self.dim, out)
        # Pre-filters: disjoint members survive whole; members pointwise
        # inside `zone` vanish; only the rest need exact subtraction.
        stacked = self._stack()
        untouched = _sk.disjoint_mask(stacked, zone.m)
        gone = _sk.inclusion_matrix(zone.m[None], stacked)[0]
        out = []
        changed = False
        for idx, a in enumerate(self.zones):
            if untouched[idx]:
                out.append(a)
            elif gone[idx]:
                changed = True
            else:
                pieces = subtract_zone(a, zone)
                out.extend(pieces)
                changed = changed or len(pieces) != 1 or pieces[0] is not a
        if not changed:
            return self
        return Federation(self.dim, out)

    def subtract(self, other: "Federation") -> "Federation":
        """Set difference ``self \\ other`` (exact)."""
        result = self
        for zone in other.zones:
            result = result.subtract_dbm(zone)
            if result.is_empty():
                break
        return result

    def complement_within(self, universe: DBM) -> "Federation":
        """``universe \\ self``."""
        return Federation.from_zone(universe).subtract(self)

    # ------------------------------------------------------------------
    # Timed operators (batched over the member stack)
    # ------------------------------------------------------------------

    def _map(self, fn: Callable[[DBM], DBM]) -> "Federation":
        return Federation(self.dim, (fn(z) for z in self.zones))

    def _batchable(self) -> bool:
        return _use_batched(len(self.zones) >= _sk.batch_min())

    def up(self) -> "Federation":
        """Delay successors of every member zone."""
        if not self.zones:
            return self
        if not self._batchable():
            return self._map(lambda z: z.up())
        stacked = self._stack()
        _sk.up(stacked)
        return Federation._from_stack(self.dim, stacked)

    def down(self) -> "Federation":
        """Delay predecessors of every member zone."""
        if not self.zones:
            return self
        if not self._batchable():
            return self._map(lambda z: z.down())
        stacked = self._stack()
        keep = _sk.down(stacked)
        return Federation._from_stack(self.dim, stacked, keep)

    def reset(self, clocks: Sequence[int]) -> "Federation":
        """Reset the given clocks to 0 in every member zone."""
        if not self.zones or not clocks:
            return self
        if not self._batchable():
            return self._map(lambda z: z.reset(clocks))
        stacked = self._stack()
        _sk.reset(stacked, clocks)
        return Federation._from_stack(self.dim, stacked)

    def free(self, clocks: Sequence[int]) -> "Federation":
        """Drop all constraints on the given clocks."""
        if not self.zones or not clocks:
            return self
        if not self._batchable():
            return self._map(lambda z: z.free(clocks))
        stacked = self._stack()
        _sk.free(stacked, clocks)
        return Federation._from_stack(self.dim, stacked)

    def reset_pred(self, clocks: Sequence[int]) -> "Federation":
        """Pre-image of a reset-to-zero of the given clocks."""
        if not self.zones or not clocks:
            return self
        if not self._batchable():
            return self._map(lambda z: z.reset_pred(clocks))
        stacked = self._stack()
        keep = _sk.constrain(stacked, [(x, 0, LE_ZERO) for x in clocks])
        if not keep.any():
            return Federation.empty(self.dim)
        stacked = stacked[keep]
        _sk.free(stacked, clocks)
        return Federation._from_stack(self.dim, stacked)

    def assign_clocks(self, pairs) -> "Federation":
        """Assign constants to clocks in every member zone."""
        if not self.zones or not pairs:
            return self
        if not self._batchable():
            return self._map(lambda z: z.assign_clocks(pairs))
        stacked = self._stack()
        _sk.reset(stacked, [x for x, _ in pairs])
        shifts = [(x, c) for x, c in pairs if c != 0]
        if shifts:
            _sk.shift(stacked, shifts)
        return Federation._from_stack(self.dim, stacked)

    def assign_pred(self, pairs) -> "Federation":
        """Pre-image of constant clock assignments."""
        if not self.zones or not pairs:
            return self
        if not self._batchable():
            return self._map(lambda z: z.assign_pred(pairs))
        fixed = [(x, 0, (c << 1) | 1) for x, c in pairs] + [
            (0, x, ((-c) << 1) | 1) for x, c in pairs
        ]
        stacked = self._stack()
        keep = _sk.constrain(stacked, fixed)
        if not keep.any():
            return Federation.empty(self.dim)
        stacked = stacked[keep]
        _sk.free(stacked, [x for x, _ in pairs])
        return Federation._from_stack(self.dim, stacked)

    def constrained(self, constraints) -> "Federation":
        """Intersect every member zone with encoded constraints."""
        if not self.zones:
            return self
        constraints = list(constraints)
        if not constraints:
            return self
        if not self._batchable():
            return self._map(lambda z: z.constrained(constraints))
        stacked = self._stack()
        keep = _sk.constrain(stacked, constraints)
        return Federation._from_stack(self.dim, stacked, keep)

    def extrapolate(self, max_consts: Sequence[int]) -> "Federation":
        """ExtraM extrapolation of every member zone."""
        if not self.zones:
            return self
        if not self._batchable():
            return self._map(lambda z: z.extrapolate(max_consts))
        stacked = self._stack()
        keep = _sk.extrapolate(stacked, max_consts)
        return Federation._from_stack(self.dim, stacked, keep)

    def compact(self) -> "Federation":
        """Drop zones covered by the union of the remaining zones (exact).

        Incremental single pass: dropping a covered zone never changes the
        union, so earlier coverage verdicts stay valid and no restart is
        needed (checks against the shrunken remainder are merely more
        conservative, never wrong).
        """
        if len(self.zones) <= 1:
            return self
        kept: List[DBM] = list(self.zones)
        idx = 0
        dropped = False
        while idx < len(kept):
            zone = kept[idx]
            rest = Federation._wrap(self.dim, kept[:idx] + kept[idx + 1 :])
            if rest.includes_zone(zone):
                kept.pop(idx)
                dropped = True
            else:
                idx += 1
        if not dropped:
            return self
        return Federation._wrap(self.dim, kept)

    # ------------------------------------------------------------------
    # Printing
    # ------------------------------------------------------------------

    def to_string(self, names: Optional[Sequence[str]] = None) -> str:
        """Human-readable disjunction of the member zones."""
        if not self.zones:
            return "false"
        parts = [z.to_string(names) for z in self.zones]
        if len(parts) == 1:
            return parts[0]
        return " || ".join(f"({p})" for p in parts)

    def __repr__(self) -> str:
        return f"Federation({self.to_string()})"


def _reduce(zones: List[DBM]) -> List[DBM]:
    """Drop zones pairwise included in another zone (cheap reduction).

    Small lists use the legacy per-pair loop; larger ones one batched
    inclusion-matrix comparison (identical keep/drop semantics, kept
    separately as the reference implementation for the differential
    kernel tests).
    """
    if len(zones) > 2:
        keep = _sk.reduce_indices(_sk.stack_of(zones))
        return [zones[i] for i in keep]
    return _reduce_pairwise(zones)


def _reduce_pairwise(zones: List[DBM]) -> List[DBM]:
    """Reference per-pair subsumption reduction (legacy implementation)."""
    kept: List[DBM] = []
    for zone in zones:
        dominated = False
        for other in kept:
            if other.includes(zone):
                dominated = True
                break
        if dominated:
            continue
        kept = [k for k in kept if not zone.includes(k)]
        kept.append(zone)
    return kept
