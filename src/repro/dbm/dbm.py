"""Difference Bound Matrices over a fixed clock set.

A :class:`DBM` represents a convex clock zone: a conjunction of constraints
``x_i - x_j ≺ b`` with ``≺ ∈ {<, <=}`` over clocks ``x_1 .. x_{dim-1}`` plus
the reference clock ``x_0 = 0``.  Entry ``(i, j)`` holds the encoded bound
on ``x_i - x_j`` (see :mod:`repro.dbm.bounds`).

All public operations return *new, canonical* DBMs; instances are treated
as immutable after construction.  Canonical (closed) form means the matrix
is its own shortest-path closure, which makes inclusion and equality tests
pointwise comparisons.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..util import counters
from . import backends as _backends
from .bounds import (
    INF,
    INF_SOFT,
    LE_ZERO,
    add_bounds,
    bound_as_string,
    decode,
    satisfies,
)

Constraint = Tuple[int, int, int]  # (i, j, encoded bound): x_i - x_j ≺ b


def _saturating_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorized encoded-bound addition with INF saturation."""
    total = a + b - ((a | b) & 1)
    np.copyto(total, INF, where=(a >= INF) | (b >= INF))
    return total


def _reclose_through(m: np.ndarray, i: int, j: int, enc: int) -> None:
    """Incremental re-closure after tightening ``m[i, j]`` to ``enc``.

    Any shortest path can now route p -> i -> j -> q.  Uses the same
    drift-tolerant addition as :meth:`DBM._close` (one INF clamp at the
    end instead of per-step masking).
    """
    col = m[:, i : i + 1]
    t = col + enc - ((col | enc) & 1)
    row = m[j : j + 1, :]
    via = t + row - ((t | row) & 1)
    np.minimum(m, via, out=m)
    np.copyto(m, INF, where=m >= INF_SOFT)


# Shared immutable template instances per dimension.  DBMs are never
# mutated after construction, so the universal/zero/empty zone of each
# dimension can be a singleton: construction becomes a dict lookup and
# ``is_universal`` an identity/array comparison against the template
# instead of a fresh allocation per call.  The backing matrices are
# marked read-only as a tripwire against accidental in-place writes.
_UNIVERSAL: Dict[int, "DBM"] = {}
_ZERO: Dict[int, "DBM"] = {}
_EMPTY: Dict[int, "DBM"] = {}

# Extrapolation runs once per freshly interned graph node against the
# same few max-constant vectors, so the comparison matrices derived from
# them are cached: row_caps[i, j] is the bound value above which entry
# (i, j) widens to INF (sentinel-huge on row 0 and the diagonal, which
# never widen), low_caps/low_repl drive the row-0 lower-bound clamp.
_EXTRA_CAPS: Dict[Tuple[int, Tuple[int, ...]], Tuple[np.ndarray, ...]] = {}


def _extra_caps(dim: int, key: Tuple[int, ...]):
    caps = _EXTRA_CAPS.get((dim, key))
    if caps is None:
        huge = np.int64(INF)
        k_arr = np.asarray(key, dtype=np.int64)
        row_caps = np.broadcast_to(k_arr[:, None], (dim, dim)).copy()
        row_caps[0, :] = huge
        np.fill_diagonal(row_caps, huge)
        low_caps = (-k_arr).copy()
        low_caps[0] = -huge
        low_repl = (-k_arr) << 1  # encode (-k_j, <)
        caps = _EXTRA_CAPS[(dim, key)] = (row_caps, low_caps, low_repl)
    return caps


class DBM:
    """A canonical difference bound matrix (a convex clock zone)."""

    __slots__ = ("m", "dim", "_empty", "_hash", "_key", "_minkey")

    def __init__(self, matrix: np.ndarray, *, empty: bool = False):
        self.m = matrix
        self.dim = matrix.shape[0]
        self._empty = empty
        self._hash: Optional[int] = None
        self._key: Optional[bytes] = None
        self._minkey: Optional[bytes] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def universal(cls, dim: int) -> "DBM":
        """The zone of all clock valuations (only ``x_i >= 0``)."""
        cached = _UNIVERSAL.get(dim)
        if cached is None:
            m = np.full((dim, dim), INF, dtype=np.int64)
            m[0, :] = LE_ZERO
            np.fill_diagonal(m, LE_ZERO)
            m.setflags(write=False)
            cached = _UNIVERSAL[dim] = cls(m)
        return cached

    @classmethod
    def zero(cls, dim: int) -> "DBM":
        """The singleton zone where every clock equals 0."""
        cached = _ZERO.get(dim)
        if cached is None:
            m = np.full((dim, dim), LE_ZERO, dtype=np.int64)
            m.setflags(write=False)
            cached = _ZERO[dim] = cls(m)
        return cached

    @classmethod
    def empty(cls, dim: int) -> "DBM":
        """A canonical empty zone."""
        cached = _EMPTY.get(dim)
        if cached is None:
            m = np.full((dim, dim), LE_ZERO, dtype=np.int64)
            m.setflags(write=False)
            cached = _EMPTY[dim] = cls(m, empty=True)
        return cached

    @classmethod
    def from_constraints(cls, dim: int, constraints: Iterable[Constraint]) -> "DBM":
        """The zone satisfying all the given constraints (and ``x_i >= 0``)."""
        return cls.universal(dim).constrained(constraints)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    def is_empty(self) -> bool:
        """True iff the zone denotes the empty set."""
        return self._empty

    def is_universal(self) -> bool:
        """True iff the zone is all of ``R_{>=0}^clocks``."""
        if self._empty:
            return False
        template = DBM.universal(self.dim)
        return self is template or bool(np.array_equal(self.m, template.m))

    def __bool__(self) -> bool:
        return not self._empty

    def equals(self, other: "DBM") -> bool:
        """Set equality (canonical forms are unique)."""
        if self._empty or other._empty:
            return self._empty and other._empty
        return bool(np.array_equal(self.m, other.m))

    def includes(self, other: "DBM") -> bool:
        """True iff ``other ⊆ self`` (as sets of valuations)."""
        if other._empty:
            return True
        if self._empty:
            return False
        return bool((self.m >= other.m).all())

    def intersects(self, other: "DBM") -> bool:
        """Whether the zones share a point."""
        return not (self._empty or other._empty or self.disjoint_from(other))

    def disjoint_from(self, other: "DBM") -> bool:
        """Exact O(dim^2) disjointness test for canonical nonempty zones.

        Two canonical zones are disjoint iff some pair of opposing bounds
        closes a negative cycle: ``self[i,j] + other[j,i] < (0, <=)``.
        """
        total = _saturating_add(self.m, other.m.T)
        return bool((total < LE_ZERO).any())

    def hash_key(self) -> bytes:
        """A bytes key identifying this zone (canonical forms are unique)."""
        if self._key is None:
            if self._empty:
                self._key = b"empty:%d" % self.dim
            else:
                self._key = self.m.tobytes()
        return self._key

    def minimal_key(self) -> bytes:
        """A compact canonical key: the packed minimal constraint form.

        Identifies the zone exactly like :meth:`hash_key` but is usually
        far smaller than the full matrix bytes (see
        :mod:`repro.dbm.minform`), so long-lived interning tables — the
        explorer's zone table, the warm cache — prefer it.  Memoized.
        """
        if self._minkey is None:
            from . import minform as _minform

            self._minkey = _minform.minimal_key(self)
        return self._minkey

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self.hash_key())
        return self._hash

    def __eq__(self, other) -> bool:
        return isinstance(other, DBM) and self.equals(other)

    # ------------------------------------------------------------------
    # Closure
    # ------------------------------------------------------------------

    @staticmethod
    def _close(m: np.ndarray) -> bool:
        """Floyd-Warshall closure in place; returns False if inconsistent.

        Uses drift-tolerant bound addition: no INF masking inside the
        loop, one clamp of everything above INF_SOFT at the end (see
        :data:`repro.dbm.bounds.INF_SOFT`).
        """
        counters.inc("dbm.closures")
        backend = _backends.active()
        if backend.compiled:
            counters.inc(backend.counter)
            return bool(backend.close(m[None])[0])
        dim = m.shape[0]
        for k in range(dim):
            col = m[:, k : k + 1]
            row = m[k : k + 1, :]
            through_k = col + row - ((col | row) & 1)
            np.minimum(m, through_k, out=m)
        np.copyto(m, INF, where=m >= INF_SOFT)
        if bool((np.diagonal(m) < LE_ZERO).any()):
            return False
        return True

    @classmethod
    def _from_raw(cls, m: np.ndarray) -> "DBM":
        """Close a raw matrix and wrap it (empty if inconsistent)."""
        if cls._close(m):
            return cls(m)
        return cls.empty(m.shape[0])

    # ------------------------------------------------------------------
    # Constraining
    # ------------------------------------------------------------------

    def would_be_empty_after(self, i: int, j: int, enc: int) -> bool:
        """Cheap exact test: does adding ``x_i - x_j ≺ b`` empty this zone?

        For a canonical DBM the only candidate negative cycle goes through
        the tightened edge, so the test is ``m[j, i] + enc < (0, <=)``.
        """
        if self._empty:
            return True
        if enc >= self.m[i, j]:
            return False
        return add_bounds(int(self.m[j, i]), enc) < LE_ZERO

    def tighten(self, i: int, j: int, enc: int) -> "DBM":
        """Intersect with one constraint, using O(dim^2) incremental closure."""
        if self._empty or enc >= self.m[i, j]:
            return self
        if add_bounds(int(self.m[j, i]), enc) < LE_ZERO:
            return DBM.empty(self.dim)
        m = self.m.copy()
        m[i, j] = enc
        _reclose_through(m, i, j, enc)
        return DBM(m)

    def constrained(self, constraints: Iterable[Constraint]) -> "DBM":
        """Intersect with a conjunction of constraints.

        Equivalent to chained :meth:`tighten`, but copies the matrix at
        most once and tightens in place — constraining is the single
        most frequent zone operation (every guard and invariant).
        """
        if self._empty:
            return self
        m: Optional[np.ndarray] = None
        for i, j, enc in constraints:
            cur = self.m if m is None else m
            if enc >= cur[i, j]:
                continue
            if add_bounds(int(cur[j, i]), enc) < LE_ZERO:
                return DBM.empty(self.dim)
            if m is None:
                m = self.m.copy()
            m[i, j] = enc
            _reclose_through(m, i, j, enc)
        return self if m is None else DBM(m)

    def intersect(self, other: "DBM") -> "DBM":
        """Zone intersection (canonical)."""
        if self._empty or other._empty:
            return DBM.empty(self.dim)
        if self.includes(other):
            return other
        if other.includes(self):
            return self
        if self.disjoint_from(other):
            return DBM.empty(self.dim)
        m = np.minimum(self.m, other.m)
        return DBM._from_raw(m)

    # ------------------------------------------------------------------
    # Timed operators
    # ------------------------------------------------------------------

    def up(self) -> "DBM":
        """Delay successors (future): ``{v + d | v in Z, d >= 0}``."""
        if self._empty:
            return self
        m = self.m.copy()
        m[1:, 0] = INF
        return DBM(m)  # removing upper bounds preserves canonicity

    def down(self) -> "DBM":
        """Delay predecessors (past): ``{v | exists d >= 0: v + d in Z}``."""
        if self._empty:
            return self
        m = self.m.copy()
        m[0, 1:] = LE_ZERO
        return DBM._from_raw(m)

    def reset(self, clocks: Sequence[int]) -> "DBM":
        """The zone after setting each clock in ``clocks`` to 0."""
        if self._empty or not clocks:
            return self
        m = self.m.copy()
        for x in clocks:
            m[x, :] = m[0, :]
            m[:, x] = m[:, 0]
            m[x, x] = LE_ZERO
            m[x, 0] = LE_ZERO
            m[0, x] = LE_ZERO
        return DBM(m)  # reset preserves canonicity

    def free(self, clocks: Sequence[int]) -> "DBM":
        """Remove all constraints on the given clocks (keeping ``x >= 0``).

        This is the inverse-image helper for reset: ``free_x(Z ∩ {x=0})``
        is exactly ``{v | v[x := 0] in Z}``.
        """
        if self._empty or not clocks:
            return self
        m = self.m.copy()
        for x in clocks:
            m[x, :] = INF
            m[:, x] = _saturating_add(m[:, 0], np.int64(LE_ZERO))
            m[x, x] = LE_ZERO
            m[0, x] = LE_ZERO
        return DBM(m)  # construction is canonical (see module tests)

    def reset_pred(self, clocks: Sequence[int]) -> "DBM":
        """Pre-image of a reset: ``{v | v[clocks := 0] ∈ self}``."""
        if not clocks:
            return self
        at_zero = self.constrained([(x, 0, LE_ZERO) for x in clocks])
        return at_zero.free(clocks)

    def assign_clocks(self, pairs: Sequence[Tuple[int, int]]) -> "DBM":
        """The zone after ``x := c`` for each ``(x, c)`` (c >= 0)."""
        if self._empty or not pairs:
            return self
        zone = self.reset([x for x, _ in pairs])
        shifts = [(x, c) for x, c in pairs if c != 0]
        if not shifts:
            return zone
        m = zone.m.copy()
        for x, c in shifts:
            # x currently equals 0; shift it to c.
            m[x, :] = _saturating_add(m[x, :], np.int64((c << 1) | 1))
            m[:, x] = _saturating_add(m[:, x], np.int64(((-c) << 1) | 1))
            m[x, x] = LE_ZERO
        return DBM(m)  # a pure shift of one coordinate preserves canonicity

    def assign_pred(self, pairs: Sequence[Tuple[int, int]]) -> "DBM":
        """Pre-image of clock assignments: ``{v | v[x := c, ...] ∈ self}``."""
        if not pairs:
            return self
        fixed = self.constrained(
            [(x, 0, (c << 1) | 1) for x, c in pairs]
            + [(0, x, ((-c) << 1) | 1) for x, c in pairs]
        )
        return fixed.free([x for x, _ in pairs])

    # ------------------------------------------------------------------
    # Extrapolation
    # ------------------------------------------------------------------

    def extrapolate(self, max_consts: Sequence[int]) -> "DBM":
        """Classic maximum-constant extrapolation (ExtraM).

        ``max_consts[i]`` is the largest constant clock ``x_i`` is compared
        against anywhere in the model (index 0 unused).  Only sound for
        diagonal-free models.
        """
        if self._empty:
            return self
        m = self.m
        row_caps, low_caps, low_repl = _extra_caps(self.dim, tuple(max_consts))
        upper = (m < INF) & ((m >> 1) > row_caps)
        low_row = m[0]
        lower = (low_row < INF) & ((low_row >> 1) < low_caps)
        if not (upper.any() or lower.any()):
            return self
        m = m.copy()
        m[upper] = INF
        if lower.any():
            m[0, lower] = low_repl[lower]
        return DBM._from_raw(m)

    # ------------------------------------------------------------------
    # Concrete valuations
    # ------------------------------------------------------------------

    def contains(self, valuation: Sequence) -> bool:
        """Whether a concrete valuation (indexable by clock id, [0]=0) lies
        in the zone.  Values may be ints, floats or Fractions."""
        if self._empty:
            return False
        for i in range(self.dim):
            vi = valuation[i] if i else 0
            for j in range(self.dim):
                if i == j:
                    continue
                vj = valuation[j] if j else 0
                if not satisfies(vi - vj, int(self.m[i, j])):
                    return False
        return True

    def _feasible_interval(self, point, x):
        """The feasible interval of clock ``x`` given fixed clocks ``< x``.

        Returns ``(lo, lo_strict, hi, hi_strict)``; ``hi`` None means
        unbounded.  Nonempty by the triangle inequality on canonical DBMs
        (the standard point-construction argument).
        """
        from fractions import Fraction

        lo = Fraction(0)
        lo_strict = False
        hi: Optional[Fraction] = None
        hi_strict = False
        for j in range(0, x):
            vj = point[j]
            # x_j - x ≺ m[j, x]  ->  x ≥/> v_j - b
            enc = int(self.m[j, x])
            if enc < INF:
                value, strict = decode(enc)
                cand = vj - value
                if cand > lo or (cand == lo and strict and not lo_strict):
                    lo, lo_strict = cand, strict
            # x - x_j ≺ m[x, j]  ->  x ≤/< v_j + b
            enc = int(self.m[x, j])
            if enc < INF:
                value, strict = decode(enc)
                cand = vj + value
                if hi is None or cand < hi or (
                    cand == hi and strict and not hi_strict
                ):
                    hi, hi_strict = cand, strict
        return lo, lo_strict, hi, hi_strict

    def sample(self):
        """Some rational point of the zone (None if empty).

        Fixes clocks left to right inside their feasible intervals.
        Prefers the lowest feasible value; takes midpoints at strict
        boundaries.
        """
        from fractions import Fraction

        if self._empty:
            return None
        point: List[Fraction] = [Fraction(0)] * self.dim
        for x in range(1, self.dim):
            lo, lo_strict, hi, _hi_strict = self._feasible_interval(point, x)
            if not lo_strict:
                point[x] = lo
            elif hi is None:
                point[x] = lo + 1
            else:
                point[x] = (lo + hi) / 2
        if not self.contains(point):  # pragma: no cover - safety net
            raise AssertionError("DBM.sample produced an external point")
        return point

    def sample_random(self, rng):
        """A random rational point of the zone (None if empty).

        Same construction as :meth:`sample`, but each clock is drawn
        uniformly from the quarter-integer grid of its feasible interval
        instead of pinned to the lower corner — better coverage for
        randomized membership cross-checks.  ``rng`` is a
        ``random.Random``; the result is deterministic per seed.
        """
        from fractions import Fraction

        if self._empty:
            return None
        point: List[Fraction] = [Fraction(0)] * self.dim
        for x in range(1, self.dim):
            lo, lo_strict, hi, hi_strict = self._feasible_interval(point, x)
            top = lo + 4 if hi is None else hi
            grid = [
                q
                for k in range(int((top - lo) * 4) + 1)
                if (q := lo + Fraction(k, 4)) is not None
                and (q > lo or not lo_strict)
                and (hi is None or q < hi or (q == hi and not hi_strict))
            ]
            if grid:
                point[x] = rng.choice(grid)
            elif hi is None:
                point[x] = lo + 1
            else:
                point[x] = (lo + hi) / 2
        if not self.contains(point):  # pragma: no cover - safety net
            raise AssertionError("DBM.sample_random produced an external point")
        return point

    # ------------------------------------------------------------------
    # Introspection / printing
    # ------------------------------------------------------------------

    def constraints(self) -> List[Constraint]:
        """All finite off-diagonal constraints of the canonical form."""
        out = []
        for i in range(self.dim):
            for j in range(self.dim):
                if i != j and self.m[i, j] < INF:
                    out.append((i, j, int(self.m[i, j])))
        return out

    def nontrivial_constraints(self) -> List[Constraint]:
        """Finite constraints excluding the implicit ``x >= 0`` bounds."""
        out = []
        for i, j, enc in self.constraints():
            if i == 0 and enc == LE_ZERO:
                continue
            out.append((i, j, enc))
        return out

    def to_string(self, names: Optional[Sequence[str]] = None) -> str:
        """Human-readable conjunction of the non-trivial constraints."""
        if self._empty:
            return "false"
        names = names or [f"x{k}" for k in range(self.dim)]
        parts = []
        for i, j, enc in self.nontrivial_constraints():
            if i == 0:
                # -x_j ≺ b  ->  x_j ≥/-... print as lower bound
                value, strict = decode(enc)
                op = ">" if strict else ">="
                parts.append(f"{names[j]} {op} {-value}")
            elif j == 0:
                parts.append(bound_as_string(enc, names[i]))
            else:
                parts.append(bound_as_string(enc, names[i], names[j]))
        return " && ".join(parts) if parts else "true"

    def __repr__(self) -> str:
        return f"DBM({self.to_string()})"
