"""Batched kernels over *stacked* DBMs.

A federation's member zones are processed as one ``(k, dim, dim)`` int64
array ("the stack") instead of ``k`` separate ``(dim, dim)`` matrices.
At the dimensions timed-game models live at (dim <= 8), per-zone numpy
calls are dominated by allocation and dispatch overhead, not arithmetic;
stacking amortizes that overhead over the whole federation: one batched
Floyd-Warshall closure, one broadcast comparison for pairwise
subsumption, one fancy-indexed constraint application.

Every function here operates on raw encoded-bound arrays (see
:mod:`repro.dbm.bounds`) and either mutates the stack in place or
returns boolean masks; wrapping rows back into :class:`~repro.dbm.DBM`
objects is the caller's job (:mod:`repro.dbm.federation`).

Backend seam
============

The hot kernels — ``close``, ``extrapolate``, ``inclusion_matrix``,
``reduce_indices``, ``subsume_frontier``, ``hidden_post_step``,
``any_hidden_post`` — dispatch through a pluggable
:class:`~repro.dbm.backends.base.KernelBackend`
(``REPRO_KERNEL_BACKEND=numpy|numba|cext|auto``).  The pure-numpy bodies
live on as module-private ``_*_ref`` functions: they are the default
backend, the differential ground truth the ``kernel`` fuzz check holds
every other backend to, and they compose only each other (never the
dispatched wrappers), so the reference path stays reference even while a
compiled backend is active.  The cheap plumbing (gathers, masks,
``reset``/``shift``/``up``, rescaling) stays plain numpy for every
backend.

Exactness notes:

* ``close`` is the batched shortest-path closure: after it, each
  nonempty row is canonical, and the returned mask is exactly the set of
  consistent (nonempty) rows.  Backends must agree with the reference on
  the mask and byte-for-byte on kept rows; rows the mask discards are
  scratch (the reference leaves them partially closed, a compiled
  backend may abandon them at the first negative diagonal).
* ``inclusion_matrix`` is exact *per pair of convex zones* (canonical
  forms make inclusion a pointwise comparison); it is a sufficient but
  not necessary test for inclusion in a *union* of zones, which is why
  the federation layer uses it as a pre-filter in front of exact
  subtraction.
* ``disjoint_mask`` is exact: two canonical nonempty zones are disjoint
  iff some pair of opposing bounds sums below ``(0, <=)``.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..util import counters
from . import backends as _backends
from .bounds import INF, INF_SOFT, LE_ZERO, MAX_BOUND_CONST

Constraint = Tuple[int, int, int]

#: Default batched-dispatch threshold: below this many stacked zones the
#: per-zone DBM path beats the batched kernel — at one or two members
#: the batched path's fixed cost (``np.stack`` gather, masks, re-wrap)
#: exceeds the dispatch overhead it amortizes.  Callers should consult
#: :func:`batch_min`, which folds in the ``REPRO_BATCH_MIN`` override.
BATCH_MIN = 3


def batch_min() -> int:
    """The effective batched-vs-scalar dispatch threshold.

    The ``REPRO_BATCH_MIN`` environment override if set, else
    :data:`BATCH_MIN`.  The threshold is deliberately
    backend-independent: the batched path's fixed cost is the
    ``np.stack`` gather and result re-wrap, which no backend removes,
    and a compiled backend accelerates the per-zone fallback too (the
    scalar pipeline's closures dispatch through the same backend), so
    measured crossover points barely move with the backend.
    """
    override = os.environ.get("REPRO_BATCH_MIN")
    if override:
        try:
            return max(1, int(override))
        except ValueError:
            pass
    return BATCH_MIN


def saturating_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorized encoded-bound addition with INF saturation."""
    total = a + b - ((a | b) & 1)
    np.copyto(total, INF, where=(a >= INF) | (b >= INF))
    return total


def stack_of(zones: Sequence) -> np.ndarray:
    """The ``(k, dim, dim)`` stack of the given DBMs' matrices."""
    return np.stack([z.m for z in zones])


# ---------------------------------------------------------------------------
# Reference kernel bodies (the numpy backend, and the differential oracle).
# ---------------------------------------------------------------------------


def _close_ref(stack: np.ndarray) -> np.ndarray:
    """Reference batched Floyd-Warshall closure in place; nonempty mask."""
    dim = stack.shape[-1]
    for via in range(dim):
        col = stack[:, :, via : via + 1]
        row = stack[:, via : via + 1, :]
        through = col + row - ((col | row) & 1)
        np.minimum(stack, through, out=stack)
    np.copyto(stack, INF, where=stack >= INF_SOFT)
    diag = np.diagonal(stack, axis1=1, axis2=2)
    return ~(diag < LE_ZERO).any(axis=1)


def _constrain_impl(
    stack: np.ndarray, constraints: Sequence[Constraint], close_fn
) -> np.ndarray:
    """Body of :func:`constrain`, parameterized on the closure kernel."""
    k = stack.shape[0]
    changed = np.zeros(k, dtype=bool)
    for i, j, enc in constraints:
        col = stack[:, i, j]
        mask = col > enc
        if mask.any():
            col[mask] = enc
            changed |= mask
    keep = np.ones(k, dtype=bool)
    if changed.any():
        sub = stack[changed]
        ok = close_fn(sub)
        stack[changed] = sub
        keep[changed] = ok
    return keep


def _constrain_ref(
    stack: np.ndarray, constraints: Sequence[Constraint]
) -> np.ndarray:
    return _constrain_impl(stack, constraints, _close_ref)


def _extrapolate_ref(
    stack: np.ndarray, max_consts: Sequence[int]
) -> np.ndarray:
    """Reference batched ExtraM extrapolation in place; nonempty mask."""
    k_arr = np.asarray(max_consts, dtype=np.int64)
    dim = stack.shape[-1]
    finite = stack < INF
    upper = finite & ((stack >> 1) > k_arr[None, :, None])
    upper[:, 0, :] = False
    idx = np.arange(dim)
    upper[:, idx, idx] = False
    low_row = stack[:, 0, :]
    lower = (low_row < INF) & ((low_row >> 1) < -k_arr[None, :])
    changed = upper.any(axis=(1, 2)) | lower.any(axis=1)
    keep = np.ones(stack.shape[0], dtype=bool)
    if not changed.any():
        return keep
    stack[upper] = INF
    if lower.any():
        repl = np.broadcast_to((-k_arr) << 1, low_row.shape)
        low_row[lower] = repl[lower]
    sub = stack[changed]
    ok = _close_ref(sub)
    stack[changed] = sub
    keep[changed] = ok
    return keep


def _inclusion_matrix_ref(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Reference ``(ka, kb)`` inclusion matrix (pointwise comparison)."""
    return (a[:, None] >= b[None, :]).all(axis=(2, 3))


def _reduce_indices_ref(stack: np.ndarray) -> List[int]:
    """Reference pairwise-subsumption reduction survivors."""
    inc = _inclusion_matrix_ref(stack, stack)
    strict = inc & ~inc.T
    equal = inc & inc.T
    dominated = strict.any(axis=0) | np.triu(equal, 1).any(axis=0)
    return [int(i) for i in np.flatnonzero(~dominated)]


def _subsume_frontier_ref(
    new: np.ndarray, seen: Optional[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """Reference frontier admission masks ``(keep_new, drop_seen)``."""
    keep = np.zeros(new.shape[0], dtype=bool)
    keep[_reduce_indices_ref(new)] = True
    if seen is None or not seen.shape[0]:
        return keep, np.zeros(0, dtype=bool)
    keep &= ~_inclusion_matrix_ref(seen, new).any(axis=0)
    if keep.any():
        drop_seen = _inclusion_matrix_ref(new[keep], seen).any(axis=0)
    else:
        drop_seen = np.zeros(seen.shape[0], dtype=bool)
    return keep, drop_seen


def _hidden_post_step_ref(
    stack: np.ndarray,
    guard: Sequence[Constraint],
    reset_clocks: Sequence[int],
    shifts: Sequence[Tuple[int, int]],
    invariant: Sequence[Constraint],
    delay: bool,
) -> np.ndarray:
    """Reference fused ``delay ∘ post`` step; see :func:`hidden_post_step`."""
    keep = (
        _constrain_ref(stack, guard)
        if guard
        else np.ones(stack.shape[0], bool)
    )
    if reset_clocks:
        reset(stack, reset_clocks)
    if shifts:
        shift(stack, shifts)
    if invariant:
        keep &= _constrain_ref(stack, invariant)
    if delay:
        up(stack)
        if invariant:
            keep &= _constrain_ref(stack, invariant)
    return keep


def _any_hidden_post_ref(
    stack: np.ndarray,
    guard: Sequence[Constraint],
    reset_clocks: Sequence[int],
    shifts: Sequence[Tuple[int, int]],
    invariant: Sequence[Constraint],
) -> bool:
    """Reference existence-only probe; see :func:`any_hidden_post`."""
    keep = (
        _constrain_ref(stack, guard)
        if guard
        else np.ones(stack.shape[0], bool)
    )
    if not keep.any():
        return False
    if not invariant:
        return True
    if reset_clocks:
        reset(stack, reset_clocks)
    if shifts:
        shift(stack, shifts)
    keep &= _constrain_ref(stack, invariant)
    return bool(keep.any())


# ---------------------------------------------------------------------------
# Dispatched kernels (public API — unchanged signatures).
# ---------------------------------------------------------------------------


def close(stack: np.ndarray) -> np.ndarray:
    """Batched Floyd-Warshall closure in place; returns the nonempty mask.

    Each row of the returned boolean ``(k,)`` mask is True iff that
    zone is consistent (no negative cycle); inconsistent rows are left
    in a backend-specific partially-closed state and must be discarded
    by the caller.
    """
    counters.inc("stack.closures")
    counters.inc("stack.closed_zones", stack.shape[0])
    backend = _backends.active()
    counters.inc(backend.counter)
    return backend.close(stack)


def up(stack: np.ndarray) -> None:
    """Delay successors of every zone, in place (canonicity preserved)."""
    stack[:, 1:, 0] = INF


def down(stack: np.ndarray) -> np.ndarray:
    """Delay predecessors of every zone, in place; returns nonempty mask."""
    stack[:, 0, 1:] = LE_ZERO
    return close(stack)


def reset(stack: np.ndarray, clocks: Sequence[int]) -> None:
    """Set each clock in ``clocks`` to 0, in place (canonicity preserved)."""
    for x in clocks:
        stack[:, x, :] = stack[:, 0, :]
        stack[:, :, x] = stack[:, :, 0]
        stack[:, x, x] = LE_ZERO
        stack[:, x, 0] = LE_ZERO
        stack[:, 0, x] = LE_ZERO


def free(stack: np.ndarray, clocks: Sequence[int]) -> None:
    """Drop all constraints on the given clocks, in place (canonical)."""
    for x in clocks:
        stack[:, x, :] = INF
        stack[:, :, x] = stack[:, :, 0]
        stack[:, x, x] = LE_ZERO
        stack[:, 0, x] = LE_ZERO


def shift(stack: np.ndarray, pairs: Sequence[Tuple[int, int]]) -> None:
    """Shift clocks currently equal to 0 to constants, in place."""
    for x, c in pairs:
        stack[:, x, :] = saturating_add(stack[:, x, :], np.int64((c << 1) | 1))
        stack[:, :, x] = saturating_add(
            stack[:, :, x], np.int64(((-c) << 1) | 1)
        )
        stack[:, x, x] = LE_ZERO


def constrain(
    stack: np.ndarray, constraints: Sequence[Constraint]
) -> np.ndarray:
    """Intersect every zone with a conjunction of encoded constraints.

    In place; returns the nonempty mask.  Zones no constraint actually
    tightens are left untouched (no re-closure).  The re-closure of the
    tightened sub-stack goes through the dispatched :func:`close`, so a
    compiled backend accelerates this path too.
    """
    return _constrain_impl(stack, constraints, close)


def intersect_zone(stack: np.ndarray, zone_m: np.ndarray) -> np.ndarray:
    """Intersect every zone with one zone matrix, in place; nonempty mask."""
    tightened = (stack > zone_m).any(axis=(1, 2))
    np.minimum(stack, zone_m, out=stack)
    keep = np.ones(stack.shape[0], dtype=bool)
    if tightened.any():
        sub = stack[tightened]
        ok = close(sub)
        stack[tightened] = sub
        keep[tightened] = ok
    return keep


def pairwise_intersect(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """All pairwise intersections of two stacks.

    Returns ``(stack, mask)`` where ``stack`` has ``ka*kb`` rows (row
    ``x*kb + y`` is ``a[x] ∩ b[y]``) and ``mask`` flags nonempty rows.
    """
    ka, dim = a.shape[0], a.shape[-1]
    kb = b.shape[0]
    out = np.minimum(a[:, None], b[None, :]).reshape(ka * kb, dim, dim)
    return out, close(out)


def extrapolate(stack: np.ndarray, max_consts: Sequence[int]) -> np.ndarray:
    """Batched ExtraM extrapolation in place; returns the nonempty mask.

    ``max_consts[i]`` is clock ``i``'s maximum constant (index 0 unused).
    Only sound for diagonal-free models, like the per-zone version.
    """
    backend = _backends.active()
    counters.inc(backend.counter)
    return backend.extrapolate(
        stack, np.asarray(max_consts, dtype=np.int64)
    )


def inclusion_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``(ka, kb)`` boolean matrix: entry ``(x, y)`` iff ``b[y] ⊆ a[x]``.

    Exact for canonical nonempty zones (pointwise bound comparison).
    """
    backend = _backends.active()
    counters.inc(backend.counter)
    return backend.inclusion_matrix(a, b)


def disjoint_mask(stack: np.ndarray, zone_m: np.ndarray) -> np.ndarray:
    """``(k,)`` mask: row ``x`` iff ``stack[x]`` and the zone are disjoint.

    Exact for canonical nonempty zones: disjoint iff some opposing bound
    pair sums to a negative cycle, ``m_a[i,j] + m_b[j,i] < (0, <=)``.
    """
    total = saturating_add(stack, zone_m.T[None])
    return (total < LE_ZERO).any(axis=(1, 2))


def scale_stack(stack: np.ndarray, factor: int) -> bool:
    """Multiply every finite bound constant by ``factor``, in place.

    The batched form of the state-estimate rescaling trick: scaling all
    values by one positive factor preserves shortest-path inequalities
    and strictness bits, so canonical rows stay canonical.  Returns False
    (leaving the stack only partially scaled — the caller must discard
    it) if a scaled constant would leave the range the drift-tolerant
    closure is sound for; True on success.
    """
    counters.inc("stack.rescales")
    counters.inc("stack.rescaled_zones", stack.shape[0])
    finite = stack < INF
    values = (stack >> 1) * factor
    if (np.abs(values[finite]) > MAX_BOUND_CONST).any():
        return False
    scaled = (values << 1) | (stack & 1)
    np.copyto(stack, scaled, where=finite)
    return True


def hidden_post_step(
    stack: np.ndarray,
    guard: Sequence[Constraint],
    reset_clocks: Sequence[int],
    shifts: Sequence[Tuple[int, int]],
    invariant: Sequence[Constraint],
    *,
    delay: bool,
) -> np.ndarray:
    """One move's discrete successor over a whole stack, in place.

    The batched ``delay ∘ post`` step of the state-estimate closure:
    guard intersection, clock reset/assignment, target-invariant
    intersection, and (iff ``delay``) the delay closure re-bounded by the
    same invariant — the constraint lists are shared by every row because
    the caller groups members by discrete state.  Returns the nonempty
    mask; rows already inconsistent after the guard still end up masked
    out (a compiled backend may stop working on them early, so their
    contents are scratch).
    """
    counters.inc("stack.hidden_posts")
    counters.inc("stack.hidden_post_zones", stack.shape[0])
    backend = _backends.active()
    counters.inc(backend.counter)
    return backend.hidden_post_step(
        stack, guard, reset_clocks, shifts, invariant, delay
    )


def any_hidden_post(
    stack: np.ndarray,
    guard: Sequence[Constraint],
    reset_clocks: Sequence[int],
    shifts: Sequence[Tuple[int, int]],
    invariant: Sequence[Constraint],
) -> bool:
    """Does *any* row of the stack have a nonempty successor on the move?

    The existence-only sibling of :func:`hidden_post_step`, for
    enabledness probes (``enabled_labels`` needs one surviving zone, not
    the zones themselves).  Two facts let it stop early: resets and
    shifts map points to points, so they can never empty a nonempty zone
    — if no target invariant constrains the landing state, surviving the
    guard already proves the post nonempty; and emptiness is invariant
    under the delay closure, so the ``delay`` step of the full kernel is
    never needed here.  Mutates the stack (callers pass a scratch copy)
    and skips the copy-out and re-wrap of the full pipeline entirely.
    """
    counters.inc("stack.any_posts")
    counters.inc("stack.any_post_zones", stack.shape[0])
    backend = _backends.active()
    counters.inc(backend.counter)
    return backend.any_hidden_post(
        stack, guard, reset_clocks, shifts, invariant
    )


def subsume_frontier(
    new: np.ndarray, seen: Optional[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """Frontier admission masks for the closure's subsumption reduction.

    Returns ``(keep_new, drop_seen)``: ``keep_new[x]`` iff ``new[x]``
    survives — not included in any ``seen`` row nor in another kept
    ``new`` row (earliest representative wins among equals) — and
    ``drop_seen[y]`` iff ``seen[y]`` is strictly dominated by a kept
    ``new`` row and should be pruned.  All rows must be canonical
    nonempty zone matrices of one discrete state.
    """
    counters.inc("stack.frontier_reductions")
    backend = _backends.active()
    counters.inc(backend.counter)
    return backend.subsume_frontier(new, seen)


def reduce_indices(stack: np.ndarray) -> List[int]:
    """Indices surviving pairwise-subsumption reduction.

    Drops every zone strictly included in another zone, and every zone
    equal to an earlier one (the earliest representative of each
    equality class is kept) — the batched equivalent of the legacy
    per-pair reduction loop.
    """
    backend = _backends.active()
    counters.inc(backend.counter)
    return backend.reduce_indices(stack)
