"""Minimal constraint form of a canonical DBM.

The classic reduction (Larsen/Larsson/Pettersson/Yi): a canonical
nonempty zone is regenerated exactly by a small subset of its
constraints — collapse zero-cycles first, then drop every bound
derivable through an intermediate clock.  The form is *canonical for
canonical inputs*: equal zones produce the identical constraint list,
which makes it the cheapest faithful serialization of a zone (the warm
solve cache stores it) and a compact interning key
(:meth:`repro.dbm.DBM.minimal_key`, used by the simulation-graph
explorer to deduplicate zone objects).

Promoted here from ``repro.game.warm`` so the DBM layer owns its own
codec; the warm cache imports these functions unchanged.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from ..util import counters
from .bounds import INF, LE_ZERO, add_bounds
from .dbm import DBM, Constraint


def minimal_constraints(zone: DBM) -> List[Tuple[int, int, int]]:
    """A minimal constraint system regenerating a canonical nonempty DBM.

    The classic reduction (Larsen et al.): collapse zero-cycles first —
    clocks ``i ~ j`` iff the bound sum ``m[i,j] + m[j,i]`` is exactly
    ``<= 0`` — keeping one tight constraint cycle through each
    equivalence class, then, among class representatives only (where
    every remaining cycle has positive weight), drop any constraint
    derivable through an intermediate representative.  Closure of the
    result reproduces ``m`` exactly.
    """
    m = zone.m
    dim = zone.dim
    rep = list(range(dim))
    for j in range(dim):
        for i in range(j):
            if rep[i] != i:
                continue
            a, b = int(m[i, j]), int(m[j, i])
            if a < INF and b < INF and add_bounds(a, b) == LE_ZERO:
                rep[j] = i
                break
    out: List[Tuple[int, int, int]] = []
    classes: Dict[int, List[int]] = {}
    for j in range(dim):
        classes.setdefault(rep[j], []).append(j)
    for members in classes.values():
        if len(members) > 1:
            for a, b in zip(members, members[1:] + members[:1]):
                out.append((a, b, int(m[a, b])))
    reps = sorted(classes)
    for i in reps:
        for j in reps:
            if i == j:
                continue
            enc = int(m[i, j])
            if enc >= INF:
                continue
            if i == 0 and enc == 1:  # implicit x_j >= 0 (LE_ZERO)
                continue
            derivable = False
            for k in reps:
                if k == i or k == j:
                    continue
                if add_bounds(int(m[i, k]), int(m[k, j])) <= enc:
                    derivable = True
                    break
            if not derivable:
                out.append((i, j, enc))
    return out


def verified_minimal_constraints(
    zone: DBM, *, fallback_counter: str = "dbm.minform_fallbacks"
) -> List[Constraint]:
    """:func:`minimal_constraints`, round-trip verified.

    If reclosing the minimal system does not reproduce the matrix
    byte-for-byte (it always should; this is a guard, not a code path
    relied upon), fall back to the full constraint set — still an exact
    round-trip by canonicity — and bump ``fallback_counter``.
    """
    cons = minimal_constraints(zone)
    if DBM.from_constraints(zone.dim, cons).hash_key() != zone.hash_key():
        counters.inc(fallback_counter)
        cons = zone.nontrivial_constraints()
    return cons


def minimal_key(zone: DBM) -> bytes:
    """A compact bytes key identifying a zone by its minimal form.

    Equal canonical zones produce identical keys (the reduction is
    deterministic) and the key is usually far smaller than the full
    ``dim² × 8``-byte matrix — constraints pack into 12 bytes each and
    most entries of a closed matrix are derivable.  Prefer
    :meth:`repro.dbm.DBM.minimal_key`, which memoizes this per instance.
    """
    if zone.is_empty():
        return b"e:%d" % zone.dim
    cons = verified_minimal_constraints(zone)
    return b"m:%d:" % zone.dim + b"".join(
        struct.pack("<hhq", i, j, enc) for i, j, enc in cons
    )
