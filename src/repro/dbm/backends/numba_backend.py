"""Numba kernel backend: JIT-compiled scalar loops over the stack.

The kernel bodies below are written in the numba-compatible subset of
Python (explicit loops over int64 arrays, no fancy indexing) and are
importable — and runnable — *without* numba installed.  That is
deliberate: the always-on ``kernel`` fuzz differential exercises these
exact bodies in pure-Python mode on every environment, so the loop
logic is continuously verified against the numpy reference even where
the JIT is absent; installing numba (``pip install repro[numba]``)
changes only how fast the same bodies run.

When numba is available, :func:`jit_kernels` wraps every body with
``numba.njit(cache=True)`` (on-disk compilation cache, so the JIT cost
is paid once per machine) and rebinds the module globals, which also
redirects the bodies' calls to each other through the compiled
dispatchers.

Exactness (see :mod:`repro.dbm.backends.base`): the loops replicate the
reference kernels' update structure — same tighten/changed/close
sequencing, same in-place reset/shift ordering, same drift clamp — with
one licensed deviation: rows found inconsistent are abandoned at the
first negative diagonal instead of being dragged through the remaining
steps, which the contract allows because dead-row content is scratch.
The in-place Floyd-Warshall is byte-identical to the reference's
per-``via`` snapshot form on consistent rows because the pivot row and
column are fixed points of their own iteration (the diagonal stays at
``LE_ZERO``, the additive identity of the bound encoding).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..bounds import INF, INF_SOFT, LE_ZERO
from .base import (
    BackendUnavailable,
    marshal_clocks,
    marshal_constraints,
    marshal_pairs,
)

Constraint = Tuple[int, int, int]

# ---------------------------------------------------------------------------
# Kernel bodies (numba-compatible; valid pure Python).
# ---------------------------------------------------------------------------


def _incl(ma, mb, dim):
    """Pointwise ``ma >= mb`` — zone inclusion for canonical matrices."""
    for i in range(dim):
        for j in range(dim):
            if ma[i, j] < mb[i, j]:
                return False
    return True


def _close_one(m, dim):
    """In-place Floyd-Warshall on one matrix; True iff consistent."""
    for via in range(dim):
        for i in range(dim):
            a = m[i, via]
            if a >= INF_SOFT:
                continue
            for j in range(dim):
                b = m[via, j]
                if b >= INF_SOFT:
                    continue
                cand = a + b - ((a | b) & 1)
                if cand < m[i, j]:
                    m[i, j] = cand
        for i in range(dim):
            if m[i, i] < LE_ZERO:
                return False
    for i in range(dim):
        for j in range(dim):
            if m[i, j] >= INF_SOFT:
                m[i, j] = INF
    return True


def _tighten_close(m, cons, dim):
    """Apply encoded constraints; re-close iff something tightened."""
    changed = False
    for c in range(cons.shape[0]):
        i = cons[c, 0]
        j = cons[c, 1]
        enc = cons[c, 2]
        if m[i, j] > enc:
            m[i, j] = enc
            changed = True
    if changed:
        return _close_one(m, dim)
    return True


def _reset_one(m, resets, dim):
    for c in range(resets.shape[0]):
        x = resets[c]
        for j in range(dim):
            m[x, j] = m[0, j]
        for i in range(dim):
            m[i, x] = m[i, 0]
        m[x, x] = LE_ZERO
        m[x, 0] = LE_ZERO
        m[0, x] = LE_ZERO


def _shift_one(m, shifts, dim):
    for c in range(shifts.shape[0]):
        x = shifts[c, 0]
        v = shifts[c, 1]
        up_enc = (v << 1) | 1
        dn_enc = ((-v) << 1) | 1
        for j in range(dim):
            a = m[x, j]
            if a >= INF:
                m[x, j] = INF
            else:
                m[x, j] = a + up_enc - ((a | up_enc) & 1)
        for i in range(dim):
            a = m[i, x]
            if a >= INF:
                m[i, x] = INF
            else:
                m[i, x] = a + dn_enc - ((a | dn_enc) & 1)
        m[x, x] = LE_ZERO


def _k_close(stack):
    k = stack.shape[0]
    dim = stack.shape[1]
    ok = np.ones(k, np.bool_)
    for z in range(k):
        ok[z] = _close_one(stack[z], dim)
    return ok


def _k_extrapolate(stack, caps):
    k = stack.shape[0]
    dim = stack.shape[1]
    ok = np.ones(k, np.bool_)
    for z in range(k):
        m = stack[z]
        changed = False
        for i in range(1, dim):
            cap = caps[i]
            for j in range(dim):
                if i == j:
                    continue
                v = m[i, j]
                if v < INF and (v >> 1) > cap:
                    m[i, j] = INF
                    changed = True
        for j in range(dim):
            v = m[0, j]
            if v < INF and (v >> 1) < -caps[j]:
                m[0, j] = (-caps[j]) << 1
                changed = True
        if changed:
            ok[z] = _close_one(m, dim)
    return ok


def _k_inclusion(a, b):
    ka = a.shape[0]
    kb = b.shape[0]
    dim = a.shape[1]
    out = np.ones((ka, kb), np.bool_)
    for x in range(ka):
        for y in range(kb):
            out[x, y] = _incl(a[x], b[y], dim)
    return out


def _k_reduce(stack):
    k = stack.shape[0]
    dim = stack.shape[1]
    keep = np.ones(k, np.bool_)
    for y in range(k):
        for x in range(k):
            if x == y:
                continue
            if not _incl(stack[x], stack[y], dim):
                continue
            if x < y or not _incl(stack[y], stack[x], dim):
                keep[y] = False
                break
    return keep


def _k_subsume(new, seen):
    kn = new.shape[0]
    ks = seen.shape[0]
    dim = new.shape[1]
    keep = _k_reduce(new)
    drop = np.zeros(ks, np.bool_)
    for x in range(kn):
        if not keep[x]:
            continue
        for s in range(ks):
            if _incl(seen[s], new[x], dim):
                keep[x] = False
                break
    for s in range(ks):
        for x in range(kn):
            if keep[x] and _incl(new[x], seen[s], dim):
                drop[s] = True
                break
    return keep, drop


def _k_hidden_post(stack, guard, resets, shifts, inv, delay):
    k = stack.shape[0]
    dim = stack.shape[1]
    keep = np.ones(k, np.bool_)
    for z in range(k):
        m = stack[z]
        if guard.shape[0] and not _tighten_close(m, guard, dim):
            keep[z] = False
            continue
        _reset_one(m, resets, dim)
        _shift_one(m, shifts, dim)
        if inv.shape[0] and not _tighten_close(m, inv, dim):
            keep[z] = False
            continue
        if delay:
            for i in range(1, dim):
                m[i, 0] = INF
            if inv.shape[0] and not _tighten_close(m, inv, dim):
                keep[z] = False
    return keep


def _k_any_hidden_post(stack, guard, resets, shifts, inv):
    k = stack.shape[0]
    dim = stack.shape[1]
    for z in range(k):
        m = stack[z]
        if guard.shape[0] and not _tighten_close(m, guard, dim):
            continue
        if inv.shape[0] == 0:
            return True
        _reset_one(m, resets, dim)
        _shift_one(m, shifts, dim)
        if _tighten_close(m, inv, dim):
            return True
    return False


#: Bodies in dependency order (helpers first, so rebinding-by-name works).
_KERNEL_NAMES = (
    "_incl",
    "_close_one",
    "_tighten_close",
    "_reset_one",
    "_shift_one",
    "_k_close",
    "_k_extrapolate",
    "_k_inclusion",
    "_k_reduce",
    "_k_subsume",
    "_k_hidden_post",
    "_k_any_hidden_post",
)

#: The pure-Python originals, snapshotted before any JIT rebinding.
PY_KERNELS = {name: globals()[name] for name in _KERNEL_NAMES}

_jitted = False


def jit_kernels() -> None:
    """Wrap every kernel body with ``numba.njit(cache=True)``, once.

    Rebinds the module globals so the bodies call each other through the
    compiled dispatchers; raises :class:`BackendUnavailable` when numba
    cannot be imported (the caller falls back to numpy).
    """
    global _jitted
    if _jitted:
        return
    try:
        import numba
    except Exception as exc:  # pragma: no cover - environment-dependent
        raise BackendUnavailable(f"numba is not importable: {exc}") from exc
    try:
        for name in _KERNEL_NAMES:
            globals()[name] = numba.njit(cache=True)(PY_KERNELS[name])
    except Exception as exc:  # pragma: no cover - environment-dependent
        for name in _KERNEL_NAMES:
            globals()[name] = PY_KERNELS[name]
        raise BackendUnavailable(f"numba JIT setup failed: {exc}") from exc
    _jitted = True


class _ArrayKernelBackend:
    """Shared marshalling shim from the stack API onto array-only kernels."""

    name = "numba"
    compiled = True
    counter = "dbm.backend_numba"

    def __init__(self, kernels) -> None:
        self._k = kernels

    def close(self, stack: np.ndarray) -> np.ndarray:
        return self._k["_k_close"](stack)

    def extrapolate(self, stack: np.ndarray, caps: np.ndarray) -> np.ndarray:
        return self._k["_k_extrapolate"](stack, np.ascontiguousarray(caps))

    def inclusion_matrix(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._k["_k_inclusion"](
            np.ascontiguousarray(a), np.ascontiguousarray(b)
        )

    def reduce_indices(self, stack: np.ndarray) -> List[int]:
        keep = self._k["_k_reduce"](np.ascontiguousarray(stack))
        return [int(i) for i in np.flatnonzero(keep)]

    def subsume_frontier(
        self, new: np.ndarray, seen: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        if seen is None or not seen.shape[0]:
            seen = np.empty((0,) + new.shape[1:], dtype=np.int64)
        keep, drop = self._k["_k_subsume"](
            np.ascontiguousarray(new), np.ascontiguousarray(seen)
        )
        return keep, drop

    def hidden_post_step(
        self,
        stack: np.ndarray,
        guard: Sequence[Constraint],
        resets: Sequence[int],
        shifts: Sequence[Tuple[int, int]],
        invariant: Sequence[Constraint],
        delay: bool,
    ) -> np.ndarray:
        return self._k["_k_hidden_post"](
            stack,
            marshal_constraints(guard),
            marshal_clocks(resets),
            marshal_pairs(shifts),
            marshal_constraints(invariant),
            delay,
        )

    def any_hidden_post(
        self,
        stack: np.ndarray,
        guard: Sequence[Constraint],
        resets: Sequence[int],
        shifts: Sequence[Tuple[int, int]],
        invariant: Sequence[Constraint],
    ) -> bool:
        return bool(
            self._k["_k_any_hidden_post"](
                stack,
                marshal_constraints(guard),
                marshal_clocks(resets),
                marshal_pairs(shifts),
                marshal_constraints(invariant),
            )
        )


class NumbaBackend(_ArrayKernelBackend):
    """The JIT-compiled backend; construction fails without numba."""

    def __init__(self) -> None:
        jit_kernels()
        super().__init__({name: globals()[name] for name in _KERNEL_NAMES})


def python_kernels() -> _ArrayKernelBackend:
    """The same kernel bodies, uncompiled.

    Not registered for dispatch (it is strictly slower than numpy) —
    this exists so the ``kernel`` differential check can fuzz the numba
    loop logic on environments without numba installed.
    """
    backend = _ArrayKernelBackend(PY_KERNELS)
    backend.name = "numba-py"
    backend.compiled = False
    backend.counter = "dbm.backend_numba_py"
    return backend
