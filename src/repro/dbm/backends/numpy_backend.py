"""The pure-numpy kernel backend: the default and the reference.

A thin class over the ``_*_ref`` bodies in :mod:`repro.dbm.stack` — the
exact code every other backend is differentially fuzzed against.  It
adds nothing: no marshalling, no copies, no extra counters beyond the
dispatch layer's, so selecting ``numpy`` is byte- and cost-identical to
the pre-seam kernels.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import stack as _sk

Constraint = Tuple[int, int, int]


class NumpyBackend:
    name = "numpy"
    compiled = False
    counter = "dbm.backend_numpy"

    def close(self, stack: np.ndarray) -> np.ndarray:
        return _sk._close_ref(stack)

    def extrapolate(self, stack: np.ndarray, caps: np.ndarray) -> np.ndarray:
        return _sk._extrapolate_ref(stack, caps)

    def inclusion_matrix(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return _sk._inclusion_matrix_ref(a, b)

    def reduce_indices(self, stack: np.ndarray) -> List[int]:
        return _sk._reduce_indices_ref(stack)

    def subsume_frontier(
        self, new: np.ndarray, seen: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        return _sk._subsume_frontier_ref(new, seen)

    def hidden_post_step(
        self,
        stack: np.ndarray,
        guard: Sequence[Constraint],
        resets: Sequence[int],
        shifts: Sequence[Tuple[int, int]],
        invariant: Sequence[Constraint],
        delay: bool,
    ) -> np.ndarray:
        return _sk._hidden_post_step_ref(
            stack, guard, resets, shifts, invariant, delay
        )

    def any_hidden_post(
        self,
        stack: np.ndarray,
        guard: Sequence[Constraint],
        resets: Sequence[int],
        shifts: Sequence[Tuple[int, int]],
        invariant: Sequence[Constraint],
    ) -> bool:
        return _sk._any_hidden_post_ref(
            stack, guard, resets, shifts, invariant
        )
