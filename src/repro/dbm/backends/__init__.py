"""Kernel backend registry: selection, fallback, and counters.

The stacked-DBM dispatch layer (:mod:`repro.dbm.stack`) asks
:func:`active` for the current :class:`~repro.dbm.backends.base.KernelBackend`
on every hot-kernel call.  Selection:

* ``REPRO_KERNEL_BACKEND=numpy|numba|cext|auto`` picks the backend at
  first use (default ``numpy``, the pure-numpy reference).
* ``auto`` probes ``numba`` → ``cext`` → ``numpy`` and takes the first
  that loads, silently.
* Naming an unavailable backend explicitly falls back to ``numpy`` with
  a one-time :class:`RuntimeWarning` and a ``dbm.backend_fallbacks``
  counter bump — a missing JIT must never turn into a hard failure in a
  test campaign.

Every resolution bumps ``dbm.backend_selected_<name>`` and each
dispatched kernel call bumps ``dbm.backend_<name>`` (via the backend's
precomputed ``counter`` attribute), so benchmark ``extra_info`` and fuzz
coverage signatures record which implementation actually ran.

This module imports no backend implementation at import time — backend
modules load lazily inside :func:`resolve`, which keeps
``repro.dbm.stack`` ↔ ``repro.dbm.backends`` import-order safe and means
a broken optional toolchain costs nothing until someone asks for it.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Iterator, List, Optional, Union

from ... import faults
from ...util import counters
from .base import BackendUnavailable, KernelBackend

__all__ = [
    "BackendUnavailable",
    "GuardedBackend",
    "KernelBackend",
    "active",
    "available_backends",
    "resolve",
    "set_backend",
    "use_backend",
]

ENV_VAR = "REPRO_KERNEL_BACKEND"

#: ``auto`` preference order: numba (when installed) beats the bundled C
#: extension on fused kernels, and anything compiled beats numpy.
AUTO_ORDER = ("numba", "cext", "numpy")

BACKEND_NAMES = ("numpy", "numba", "cext")

_active: Optional[KernelBackend] = None
_warned_fallback = False


class GuardedBackend:
    """A compiled backend with per-call demotion to the numpy reference.

    A ``.so`` that loads but faults at runtime — a cffi/ctypes dispatch
    error, a marshalling type error, or an injected
    ``dbm.<name>.compute`` fault — must cost one slow call, never the
    campaign.  Every kernel call is guarded: on any exception the call
    reruns on the pure-numpy reference with a ``dbm.backend_demotions``
    counter bump, and the caller never notices (the backends are
    byte-exact against the reference by contract).

    Soundness of replaying on the same buffers: catchable compiled-path
    failures happen during argument marshalling or FFI dispatch —
    *before* the C kernel writes — and injected faults fire at call
    entry, so the demoted call sees pristine inputs.  (A fault inside
    the C body itself is a segfault, which no guard can catch.)
    """

    def __init__(self, inner: KernelBackend):
        self._inner = inner
        self.name = inner.name
        self.compiled = inner.compiled
        self.counter = inner.counter
        self._site = f"dbm.{inner.name}.compute"
        self._reference: Optional[KernelBackend] = None

    def _demote(self):
        counters.inc("dbm.backend_demotions")
        if self._reference is None:
            from .numpy_backend import NumpyBackend

            self._reference = NumpyBackend()
        return self._reference

    def close(self, stack):
        try:
            faults.fire(self._site)
            return self._inner.close(stack)
        except Exception:
            return self._demote().close(stack)

    def extrapolate(self, stack, caps):
        try:
            faults.fire(self._site)
            return self._inner.extrapolate(stack, caps)
        except Exception:
            return self._demote().extrapolate(stack, caps)

    def inclusion_matrix(self, a, b):
        try:
            faults.fire(self._site)
            return self._inner.inclusion_matrix(a, b)
        except Exception:
            return self._demote().inclusion_matrix(a, b)

    def reduce_indices(self, stack):
        try:
            faults.fire(self._site)
            return self._inner.reduce_indices(stack)
        except Exception:
            return self._demote().reduce_indices(stack)

    def subsume_frontier(self, new, seen):
        try:
            faults.fire(self._site)
            return self._inner.subsume_frontier(new, seen)
        except Exception:
            return self._demote().subsume_frontier(new, seen)

    def hidden_post_step(self, stack, guard, resets, shifts, invariant, delay):
        try:
            faults.fire(self._site)
            return self._inner.hidden_post_step(
                stack, guard, resets, shifts, invariant, delay
            )
        except Exception:
            return self._demote().hidden_post_step(
                stack, guard, resets, shifts, invariant, delay
            )

    def any_hidden_post(self, stack, guard, resets, shifts, invariant):
        try:
            faults.fire(self._site)
            return self._inner.any_hidden_post(
                stack, guard, resets, shifts, invariant
            )
        except Exception:
            return self._demote().any_hidden_post(
                stack, guard, resets, shifts, invariant
            )


def _load(name: str) -> KernelBackend:
    """Instantiate one backend by name; raises :class:`BackendUnavailable`.

    Compiled backends come wrapped in :class:`GuardedBackend`, so a
    runtime kernel fault demotes to the numpy reference instead of
    crashing whatever campaign or server session made the call.
    """
    if name == "numpy":
        from .numpy_backend import NumpyBackend

        return NumpyBackend()
    if name == "numba":
        from .numba_backend import NumbaBackend

        backend = NumbaBackend()
        return GuardedBackend(backend) if backend.compiled else backend
    if name == "cext":
        from .cext import CExtBackend

        backend = CExtBackend()
        return GuardedBackend(backend) if backend.compiled else backend
    raise BackendUnavailable(
        f"unknown kernel backend {name!r} "
        f"(expected one of {', '.join(BACKEND_NAMES)}, or 'auto')"
    )


def resolve(spec: Optional[str]) -> KernelBackend:
    """Resolve a backend spec (``numpy|numba|cext|auto``) to an instance.

    Explicit names fall back to numpy (warning + counter) when the
    backend cannot load; ``auto`` falls through its preference order
    silently — not having an optional accelerator is the expected state,
    not a misconfiguration.
    """
    global _warned_fallback
    spec = (spec or "numpy").strip().lower()
    backend: Optional[KernelBackend] = None
    if spec == "auto":
        for name in AUTO_ORDER:
            try:
                backend = _load(name)
                break
            except BackendUnavailable:
                continue
    else:
        try:
            backend = _load(spec)
        except BackendUnavailable as exc:
            counters.inc("dbm.backend_fallbacks")
            if not _warned_fallback:
                _warned_fallback = True
                warnings.warn(
                    f"kernel backend {spec!r} unavailable, "
                    f"falling back to numpy: {exc}",
                    RuntimeWarning,
                    stacklevel=3,
                )
            backend = _load("numpy")
    assert backend is not None  # numpy always loads
    counters.inc(f"dbm.backend_selected_{backend.name}")
    return backend


def active() -> KernelBackend:
    """The backend hot kernels dispatch to (resolved once, from the env)."""
    global _active
    if _active is None:
        _active = resolve(os.environ.get(ENV_VAR))
    return _active


def set_backend(
    spec: Union[KernelBackend, str, None]
) -> Optional[KernelBackend]:
    """Install a backend (instance or spec string) as the active one.

    ``None`` clears the cached selection so the next kernel call
    re-reads ``REPRO_KERNEL_BACKEND``.  Returns the installed backend
    (or None when clearing).
    """
    global _active
    if spec is None:
        _active = None
        return None
    _active = resolve(spec) if isinstance(spec, str) else spec
    return _active


@contextmanager
def use_backend(
    spec: Union[KernelBackend, str]
) -> Iterator[KernelBackend]:
    """Temporarily dispatch through the given backend (tests, differentials)."""
    global _active
    previous = _active
    installed = set_backend(spec)
    try:
        assert installed is not None
        yield installed
    finally:
        _active = previous


def available_backends() -> List[str]:
    """Names of the backends that actually load in this environment."""
    out = []
    for name in BACKEND_NAMES:
        try:
            _load(name)
        except BackendUnavailable:
            continue
        out.append(name)
    return out
