"""Kernel backend registry: selection, fallback, and counters.

The stacked-DBM dispatch layer (:mod:`repro.dbm.stack`) asks
:func:`active` for the current :class:`~repro.dbm.backends.base.KernelBackend`
on every hot-kernel call.  Selection:

* ``REPRO_KERNEL_BACKEND=numpy|numba|cext|auto`` picks the backend at
  first use (default ``numpy``, the pure-numpy reference).
* ``auto`` probes ``numba`` → ``cext`` → ``numpy`` and takes the first
  that loads, silently.
* Naming an unavailable backend explicitly falls back to ``numpy`` with
  a one-time :class:`RuntimeWarning` and a ``dbm.backend_fallbacks``
  counter bump — a missing JIT must never turn into a hard failure in a
  test campaign.

Every resolution bumps ``dbm.backend_selected_<name>`` and each
dispatched kernel call bumps ``dbm.backend_<name>`` (via the backend's
precomputed ``counter`` attribute), so benchmark ``extra_info`` and fuzz
coverage signatures record which implementation actually ran.

This module imports no backend implementation at import time — backend
modules load lazily inside :func:`resolve`, which keeps
``repro.dbm.stack`` ↔ ``repro.dbm.backends`` import-order safe and means
a broken optional toolchain costs nothing until someone asks for it.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Iterator, List, Optional, Union

from ...util import counters
from .base import BackendUnavailable, KernelBackend

__all__ = [
    "BackendUnavailable",
    "KernelBackend",
    "active",
    "available_backends",
    "resolve",
    "set_backend",
    "use_backend",
]

ENV_VAR = "REPRO_KERNEL_BACKEND"

#: ``auto`` preference order: numba (when installed) beats the bundled C
#: extension on fused kernels, and anything compiled beats numpy.
AUTO_ORDER = ("numba", "cext", "numpy")

BACKEND_NAMES = ("numpy", "numba", "cext")

_active: Optional[KernelBackend] = None
_warned_fallback = False


def _load(name: str) -> KernelBackend:
    """Instantiate one backend by name; raises :class:`BackendUnavailable`."""
    if name == "numpy":
        from .numpy_backend import NumpyBackend

        return NumpyBackend()
    if name == "numba":
        from .numba_backend import NumbaBackend

        return NumbaBackend()
    if name == "cext":
        from .cext import CExtBackend

        return CExtBackend()
    raise BackendUnavailable(
        f"unknown kernel backend {name!r} "
        f"(expected one of {', '.join(BACKEND_NAMES)}, or 'auto')"
    )


def resolve(spec: Optional[str]) -> KernelBackend:
    """Resolve a backend spec (``numpy|numba|cext|auto``) to an instance.

    Explicit names fall back to numpy (warning + counter) when the
    backend cannot load; ``auto`` falls through its preference order
    silently — not having an optional accelerator is the expected state,
    not a misconfiguration.
    """
    global _warned_fallback
    spec = (spec or "numpy").strip().lower()
    backend: Optional[KernelBackend] = None
    if spec == "auto":
        for name in AUTO_ORDER:
            try:
                backend = _load(name)
                break
            except BackendUnavailable:
                continue
    else:
        try:
            backend = _load(spec)
        except BackendUnavailable as exc:
            counters.inc("dbm.backend_fallbacks")
            if not _warned_fallback:
                _warned_fallback = True
                warnings.warn(
                    f"kernel backend {spec!r} unavailable, "
                    f"falling back to numpy: {exc}",
                    RuntimeWarning,
                    stacklevel=3,
                )
            backend = _load("numpy")
    assert backend is not None  # numpy always loads
    counters.inc(f"dbm.backend_selected_{backend.name}")
    return backend


def active() -> KernelBackend:
    """The backend hot kernels dispatch to (resolved once, from the env)."""
    global _active
    if _active is None:
        _active = resolve(os.environ.get(ENV_VAR))
    return _active


def set_backend(
    spec: Union[KernelBackend, str, None]
) -> Optional[KernelBackend]:
    """Install a backend (instance or spec string) as the active one.

    ``None`` clears the cached selection so the next kernel call
    re-reads ``REPRO_KERNEL_BACKEND``.  Returns the installed backend
    (or None when clearing).
    """
    global _active
    if spec is None:
        _active = None
        return None
    _active = resolve(spec) if isinstance(spec, str) else spec
    return _active


@contextmanager
def use_backend(
    spec: Union[KernelBackend, str]
) -> Iterator[KernelBackend]:
    """Temporarily dispatch through the given backend (tests, differentials)."""
    global _active
    previous = _active
    installed = set_backend(spec)
    try:
        assert installed is not None
        yield installed
    finally:
        _active = previous


def available_backends() -> List[str]:
    """Names of the backends that actually load in this environment."""
    out = []
    for name in BACKEND_NAMES:
        try:
            _load(name)
        except BackendUnavailable:
            continue
        out.append(name)
    return out
