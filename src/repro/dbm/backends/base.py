"""The ``KernelBackend`` protocol: the seam the stacked kernels dispatch on.

A backend supplies implementations of the *hot* stacked-DBM kernels —
the operations profiling shows every solver fixpoint, state-estimate
closure, and explorer subsumption scan bottoms out in.  Everything else
in :mod:`repro.dbm.stack` (gathers, masks, cheap per-entry updates) is
shared plumbing and stays numpy regardless of the backend.

Exactness contract
==================

For every kernel the backend must return, for each input row, *exactly*
the reference (pure-numpy) result:

* the keep/nonempty masks must be identical, and
* every **kept** row's matrix must be byte-identical to the reference.

Rows the mask discards are scratch: their contents are unspecified (the
reference leaves them partially closed, a compiled backend may bail out
of them early) and callers must never read them.  The contract is not a
convention but a theorem for any correct implementation — kept rows are
canonical, and canonical forms are unique — and it is *enforced* by the
always-on ``kernel`` differential check (:mod:`repro.gen.differential`),
which fuzzes every available backend against the numpy reference, the
same way ``REPRO_ESTIMATE_SCALAR`` keeps the scalar estimate path
honest.

Argument marshalling
====================

Backends receive guard/invariant/reset/shift arguments exactly as the
public :mod:`repro.dbm.stack` functions do: Python sequences of tuples
(plus ``caps`` already as an ``int64`` vector).  Compiled backends
marshal them to ``int64`` arrays themselves (``(n, 3)`` for
``(i, j, enc)`` constraint rows, ``(n, 2)`` for ``(clock, value)``
pairs, via :func:`marshal_constraints` / :func:`marshal_pairs`) so the
numpy reference path pays no conversion cost at all.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Tuple, runtime_checkable

import numpy as np


@runtime_checkable
class KernelBackend(Protocol):
    """Implementations of the hot stacked kernels (see module docstring)."""

    #: Registry name ("numpy", "numba", "cext").
    name: str
    #: True for backends that run compiled (JIT or native) code.  A
    #: compiled backend also serves the *per-zone* closure
    #: (``DBM._close`` routes single matrices through ``close`` as a
    #: 1-stack), so both sides of the hybrid batched/scalar dispatch
    #: accelerate together.
    compiled: bool
    #: Counter bumped on every dispatched kernel call
    #: (``dbm.backend_<name>``), surfaced in benchmark ``extra_info``.
    counter: str

    def close(self, stack: np.ndarray) -> np.ndarray:
        """Batched Floyd-Warshall closure in place; the nonempty mask."""
        ...

    def extrapolate(self, stack: np.ndarray, caps: np.ndarray) -> np.ndarray:
        """Batched ExtraM widening in place; the nonempty mask."""
        ...

    def inclusion_matrix(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``(ka, kb)`` bool matrix: ``(x, y)`` iff ``b[y] ⊆ a[x]``."""
        ...

    def reduce_indices(self, stack: np.ndarray) -> List[int]:
        """Indices surviving pairwise-subsumption reduction."""
        ...

    def subsume_frontier(
        self, new: np.ndarray, seen: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Frontier admission masks ``(keep_new, drop_seen)``."""
        ...

    def hidden_post_step(
        self,
        stack: np.ndarray,
        guard: np.ndarray,
        resets: np.ndarray,
        shifts: np.ndarray,
        invariant: np.ndarray,
        delay: bool,
    ) -> np.ndarray:
        """One move's fused ``delay ∘ post`` over the stack, in place."""
        ...

    def any_hidden_post(
        self,
        stack: np.ndarray,
        guard: np.ndarray,
        resets: np.ndarray,
        shifts: np.ndarray,
        invariant: np.ndarray,
    ) -> bool:
        """Existence-only probe: does any row survive the move?"""
        ...


class BackendUnavailable(RuntimeError):
    """A requested backend cannot be loaded (import/toolchain failure)."""


def marshal_constraints(constraints) -> np.ndarray:
    """``(i, j, enc)`` tuples → a C-contiguous ``(n, 3)`` int64 array."""
    if not len(constraints):
        return np.empty((0, 3), dtype=np.int64)
    return np.ascontiguousarray(np.asarray(constraints, dtype=np.int64))


def marshal_pairs(pairs) -> np.ndarray:
    """``(clock, value)`` tuples → a C-contiguous ``(n, 2)`` int64 array."""
    if not len(pairs):
        return np.empty((0, 2), dtype=np.int64)
    return np.ascontiguousarray(np.asarray(pairs, dtype=np.int64))


def marshal_clocks(clocks) -> np.ndarray:
    """Clock indices → a C-contiguous ``(n,)`` int64 array."""
    return np.ascontiguousarray(np.asarray(list(clocks), dtype=np.int64))
