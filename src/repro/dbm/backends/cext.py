"""C-extension kernel backend: system-compiler build, loaded via ctypes.

The hot kernels as ~150 lines of portable C (same loop structure as the
numba bodies — see :mod:`repro.dbm.backends.numba_backend` for the
exactness argument), compiled on first use with the host toolchain::

    cc -O2 -shared -fPIC

and cached as a shared object keyed by the SHA-256 of the source, under
``$REPRO_KERNEL_CACHE`` (default ``~/.cache/repro-kernels``), so the
build cost is paid once per source revision per machine.  The build is
atomic (temp file + rename), safe under concurrent workers.  No
compiler, a failed build, or a failed load all raise
:class:`BackendUnavailable`, which the registry turns into a numpy
fallback — this backend needs nothing installed beyond a C compiler.

Why a dlopen'd plain C library and not a real CPython extension module:
no build step at install time (the repo stays pure-python), no ABI
coupling to the running interpreter, and the per-call overhead is far
below the per-kernel python/numpy dispatch cost it replaces.  Calls go
through cffi in ABI mode when cffi is importable (~3µs per fused kernel
call) and fall back to ctypes (~2x slower per call, still far ahead of
numpy) otherwise.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .base import (
    BackendUnavailable,
    marshal_clocks,
    marshal_constraints,
    marshal_pairs,
)

Constraint = Tuple[int, int, int]

_SOURCE = r"""
#include <stdint.h>

#define INF      ((int64_t)1 << 40)
#define INF_SOFT ((int64_t)1 << 39)
#define LE_ZERO  ((int64_t)1)

/* In-place Floyd-Warshall on one (dim, dim) matrix; 1 iff consistent.
 * Pivot row/column are fixed points of their own iteration (diagonal
 * stays LE_ZERO, the encoding's additive identity), so the in-place
 * update matches the reference per-via snapshot update on consistent
 * matrices; inconsistent ones are abandoned at the first negative
 * diagonal (their content is scratch by the backend contract). */
static int close_one(int64_t *m, int64_t dim)
{
    int64_t via, i, j;
    for (via = 0; via < dim; via++) {
        const int64_t *vrow = m + via * dim;
        for (i = 0; i < dim; i++) {
            int64_t *irow = m + i * dim;
            int64_t a = irow[via];
            if (a >= INF_SOFT)
                continue;
            for (j = 0; j < dim; j++) {
                int64_t b = vrow[j];
                int64_t cand;
                if (b >= INF_SOFT)
                    continue;
                cand = a + b - ((a | b) & 1);
                if (cand < irow[j])
                    irow[j] = cand;
            }
        }
        for (i = 0; i < dim; i++)
            if (m[i * dim + i] < LE_ZERO)
                return 0;
    }
    for (i = 0; i < dim * dim; i++)
        if (m[i] >= INF_SOFT)
            m[i] = INF;
    return 1;
}

static int incl(const int64_t *ma, const int64_t *mb, int64_t nn)
{
    int64_t t;
    for (t = 0; t < nn; t++)
        if (ma[t] < mb[t])
            return 0;
    return 1;
}

static int tighten_close(int64_t *m, const int64_t *cons, int64_t nc,
                         int64_t dim)
{
    int changed = 0;
    int64_t c;
    for (c = 0; c < nc; c++) {
        int64_t i = cons[c * 3], j = cons[c * 3 + 1], enc = cons[c * 3 + 2];
        if (m[i * dim + j] > enc) {
            m[i * dim + j] = enc;
            changed = 1;
        }
    }
    return changed ? close_one(m, dim) : 1;
}

static void reset_one(int64_t *m, const int64_t *resets, int64_t nr,
                      int64_t dim)
{
    int64_t c, i, j;
    for (c = 0; c < nr; c++) {
        int64_t x = resets[c];
        for (j = 0; j < dim; j++)
            m[x * dim + j] = m[j];
        for (i = 0; i < dim; i++)
            m[i * dim + x] = m[i * dim];
        m[x * dim + x] = LE_ZERO;
        m[x * dim] = LE_ZERO;
        m[x] = LE_ZERO;
    }
}

static void shift_one(int64_t *m, const int64_t *shifts, int64_t ns,
                      int64_t dim)
{
    int64_t c, i, j;
    for (c = 0; c < ns; c++) {
        int64_t x = shifts[c * 2], v = shifts[c * 2 + 1];
        int64_t up_enc = v * 2 + 1, dn_enc = (-v) * 2 + 1;
        for (j = 0; j < dim; j++) {
            int64_t a = m[x * dim + j];
            m[x * dim + j] =
                (a >= INF) ? INF : a + up_enc - ((a | up_enc) & 1);
        }
        for (i = 0; i < dim; i++) {
            int64_t a = m[i * dim + x];
            m[i * dim + x] =
                (a >= INF) ? INF : a + dn_enc - ((a | dn_enc) & 1);
        }
        m[x * dim + x] = LE_ZERO;
    }
}

void k_close(int64_t *stack, int64_t k, int64_t dim, uint8_t *ok)
{
    int64_t z, nn = dim * dim;
    for (z = 0; z < k; z++)
        ok[z] = (uint8_t)close_one(stack + z * nn, dim);
}

void k_extrapolate(int64_t *stack, int64_t k, int64_t dim,
                   const int64_t *caps, uint8_t *ok)
{
    int64_t z, i, j, nn = dim * dim;
    for (z = 0; z < k; z++) {
        int64_t *m = stack + z * nn;
        int changed = 0;
        for (i = 1; i < dim; i++) {
            int64_t cap = caps[i];
            for (j = 0; j < dim; j++) {
                int64_t v = m[i * dim + j];
                if (i != j && v < INF && (v >> 1) > cap) {
                    m[i * dim + j] = INF;
                    changed = 1;
                }
            }
        }
        for (j = 0; j < dim; j++) {
            int64_t v = m[j];
            if (v < INF && (v >> 1) < -caps[j]) {
                m[j] = (-caps[j]) * 2;
                changed = 1;
            }
        }
        ok[z] = changed ? (uint8_t)close_one(m, dim) : 1;
    }
}

void k_inclusion(const int64_t *a, int64_t ka, const int64_t *b, int64_t kb,
                 int64_t dim, uint8_t *out)
{
    int64_t x, y, nn = dim * dim;
    for (x = 0; x < ka; x++)
        for (y = 0; y < kb; y++)
            out[x * kb + y] = (uint8_t)incl(a + x * nn, b + y * nn, nn);
}

void k_reduce(const int64_t *stack, int64_t k, int64_t dim, uint8_t *keep)
{
    int64_t x, y, nn = dim * dim;
    for (y = 0; y < k; y++) {
        keep[y] = 1;
        for (x = 0; x < k; x++) {
            if (x == y)
                continue;
            if (!incl(stack + x * nn, stack + y * nn, nn))
                continue;
            if (x < y || !incl(stack + y * nn, stack + x * nn, nn)) {
                keep[y] = 0;
                break;
            }
        }
    }
}

void k_subsume(const int64_t *nw, int64_t kn, const int64_t *seen,
               int64_t ks, int64_t dim, uint8_t *keep, uint8_t *drop)
{
    int64_t x, s, nn = dim * dim;
    k_reduce(nw, kn, dim, keep);
    for (x = 0; x < kn; x++) {
        if (!keep[x])
            continue;
        for (s = 0; s < ks; s++)
            if (incl(seen + s * nn, nw + x * nn, nn)) {
                keep[x] = 0;
                break;
            }
    }
    for (s = 0; s < ks; s++) {
        drop[s] = 0;
        for (x = 0; x < kn; x++)
            if (keep[x] && incl(nw + x * nn, seen + s * nn, nn)) {
                drop[s] = 1;
                break;
            }
    }
}

void k_hidden_post(int64_t *stack, int64_t k, int64_t dim,
                   const int64_t *guard, int64_t ng,
                   const int64_t *resets, int64_t nr,
                   const int64_t *shifts, int64_t ns,
                   const int64_t *inv, int64_t ni,
                   int64_t delay, uint8_t *keep)
{
    int64_t z, i, nn = dim * dim;
    for (z = 0; z < k; z++) {
        int64_t *m = stack + z * nn;
        keep[z] = 1;
        if (ng && !tighten_close(m, guard, ng, dim)) {
            keep[z] = 0;
            continue;
        }
        reset_one(m, resets, nr, dim);
        shift_one(m, shifts, ns, dim);
        if (ni && !tighten_close(m, inv, ni, dim)) {
            keep[z] = 0;
            continue;
        }
        if (delay) {
            for (i = 1; i < dim; i++)
                m[i * dim] = INF;
            if (ni && !tighten_close(m, inv, ni, dim))
                keep[z] = 0;
        }
    }
}

int64_t k_any_hidden_post(int64_t *stack, int64_t k, int64_t dim,
                          const int64_t *guard, int64_t ng,
                          const int64_t *resets, int64_t nr,
                          const int64_t *shifts, int64_t ns,
                          const int64_t *inv, int64_t ni)
{
    int64_t z, nn = dim * dim;
    for (z = 0; z < k; z++) {
        int64_t *m = stack + z * nn;
        if (ng && !tighten_close(m, guard, ng, dim))
            continue;
        if (!ni)
            return 1;
        reset_one(m, resets, nr, dim);
        shift_one(m, shifts, ns, dim);
        if (tighten_close(m, inv, ni, dim))
            return 1;
    }
    return 0;
}
"""

_DECLS = """
void k_close(int64_t *stack, int64_t k, int64_t dim, uint8_t *ok);
void k_extrapolate(int64_t *stack, int64_t k, int64_t dim,
                   const int64_t *caps, uint8_t *ok);
void k_inclusion(const int64_t *a, int64_t ka, const int64_t *b, int64_t kb,
                 int64_t dim, uint8_t *out);
void k_reduce(const int64_t *stack, int64_t k, int64_t dim, uint8_t *keep);
void k_subsume(const int64_t *nw, int64_t kn, const int64_t *seen,
               int64_t ks, int64_t dim, uint8_t *keep, uint8_t *drop);
void k_hidden_post(int64_t *stack, int64_t k, int64_t dim,
                   const int64_t *guard, int64_t ng,
                   const int64_t *resets, int64_t nr,
                   const int64_t *shifts, int64_t ns,
                   const int64_t *inv, int64_t ni,
                   int64_t delay, uint8_t *keep);
int64_t k_any_hidden_post(int64_t *stack, int64_t k, int64_t dim,
                          const int64_t *guard, int64_t ng,
                          const int64_t *resets, int64_t nr,
                          const int64_t *shifts, int64_t ns,
                          const int64_t *inv, int64_t ni);
"""

_BINDING = None


class _CffiBinding:
    """cffi ABI-mode binding: the fast per-call path (~3µs fused call)."""

    kind = "cffi"

    def __init__(self, path: str) -> None:
        import cffi

        ffi = cffi.FFI()
        ffi.cdef(_DECLS)
        self._lib = ffi.dlopen(path)
        self._i64 = lambda arr: ffi.from_buffer("int64_t[]", arr)
        self._u8 = lambda arr: ffi.from_buffer("uint8_t[]", arr)

    def __getattr__(self, name):
        return getattr(self._lib, name)


class _CtypesBinding:
    """ctypes fallback binding (stdlib-only; ~2x the per-call cost)."""

    kind = "ctypes"

    _I64 = ctypes.c_int64
    _PTR = ctypes.c_void_p
    _SIGNATURES = {
        "k_close": (None, [_PTR, _I64, _I64, _PTR]),
        "k_extrapolate": (None, [_PTR, _I64, _I64, _PTR, _PTR]),
        "k_inclusion": (None, [_PTR, _I64, _PTR, _I64, _I64, _PTR]),
        "k_reduce": (None, [_PTR, _I64, _I64, _PTR]),
        "k_subsume": (None, [_PTR, _I64, _PTR, _I64, _I64, _PTR, _PTR]),
        "k_hidden_post": (
            None,
            [_PTR, _I64, _I64, _PTR, _I64, _PTR, _I64, _PTR, _I64, _PTR,
             _I64, _I64, _PTR],
        ),
        "k_any_hidden_post": (
            _I64,
            [_PTR, _I64, _I64, _PTR, _I64, _PTR, _I64, _PTR, _I64, _PTR,
             _I64],
        ),
    }

    def __init__(self, path: str) -> None:
        lib = ctypes.CDLL(path)
        for fn_name, (restype, argtypes) in self._SIGNATURES.items():
            fn = getattr(lib, fn_name)
            fn.restype = restype
            fn.argtypes = argtypes
        self._lib = lib
        self._i64 = lambda arr: arr.ctypes.data
        self._u8 = lambda arr: arr.ctypes.data

    def __getattr__(self, name):
        return getattr(self._lib, name)


def cache_dir() -> str:
    return os.environ.get("REPRO_KERNEL_CACHE") or os.path.join(
        os.path.expanduser("~"), ".cache", "repro-kernels"
    )


def _build_library() -> str:
    """Compile (or reuse) the kernel shared object; returns its path."""
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    so_path = os.path.join(cache_dir(), f"repro_kernels_{digest}.so")
    if os.path.exists(so_path):
        return so_path
    cc = os.environ.get("CC") or shutil.which("cc") or shutil.which("gcc")
    if not cc:
        raise BackendUnavailable("no C compiler (cc/gcc) on PATH")
    try:
        os.makedirs(cache_dir(), exist_ok=True)
        with tempfile.TemporaryDirectory(dir=cache_dir()) as tmp:
            c_path = os.path.join(tmp, "kernels.c")
            with open(c_path, "w") as fh:
                fh.write(_SOURCE)
            tmp_so = os.path.join(tmp, "kernels.so")
            proc = subprocess.run(
                [cc, "-O2", "-shared", "-fPIC", "-o", tmp_so, c_path],
                capture_output=True,
                text=True,
                timeout=120,
            )
            if proc.returncode != 0:
                raise BackendUnavailable(
                    f"C kernel build failed: {proc.stderr.strip()[:500]}"
                )
            os.replace(tmp_so, so_path)
    except BackendUnavailable:
        raise
    except Exception as exc:
        raise BackendUnavailable(f"C kernel build failed: {exc}") from exc
    return so_path


def _library():
    """The loaded kernel binding (cffi preferred, ctypes fallback)."""
    global _BINDING
    if _BINDING is None:
        path = _build_library()
        try:
            try:
                _BINDING = _CffiBinding(path)
            except ImportError:
                _BINDING = _CtypesBinding(path)
        except OSError as exc:
            raise BackendUnavailable(
                f"cannot load kernel library {path}: {exc}"
            ) from exc
    return _BINDING


def _inplace_i64(stack: np.ndarray):
    """A C-contiguous int64 buffer for ``stack``, plus a write-back flag.

    Dispatch-path stacks are contiguous already (``np.stack``, boolean
    fancy-indexing, leading-axis slices all yield contiguous arrays), so
    the copy branch is a correctness net for exotic callers, not a cost
    on the hot path.
    """
    buf = np.ascontiguousarray(stack, dtype=np.int64)
    return buf, buf is not stack


def _ro_i64(arr: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(arr, dtype=np.int64)


class CExtBackend:
    name = "cext"
    compiled = True
    counter = "dbm.backend_cext"

    def __init__(self) -> None:
        self._b = _library()
        #: Which FFI layer calls go through ("cffi" or "ctypes").
        self.binding = self._b.kind

    def close(self, stack: np.ndarray) -> np.ndarray:
        b = self._b
        buf, copied = _inplace_i64(stack)
        k, dim = buf.shape[0], buf.shape[-1]
        ok = np.empty(k, dtype=np.uint8)
        b.k_close(b._i64(buf), k, dim, b._u8(ok))
        if copied:
            stack[...] = buf
        return ok.view(np.bool_)

    def extrapolate(self, stack: np.ndarray, caps: np.ndarray) -> np.ndarray:
        b = self._b
        buf, copied = _inplace_i64(stack)
        k, dim = buf.shape[0], buf.shape[-1]
        caps = _ro_i64(caps)
        ok = np.empty(k, dtype=np.uint8)
        b.k_extrapolate(b._i64(buf), k, dim, b._i64(caps), b._u8(ok))
        if copied:
            stack[...] = buf
        return ok.view(np.bool_)

    def inclusion_matrix(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        lib = self._b
        a = _ro_i64(a)
        b = _ro_i64(b)
        ka, kb, dim = a.shape[0], b.shape[0], a.shape[-1]
        out = np.empty((ka, kb), dtype=np.uint8)
        lib.k_inclusion(
            lib._i64(a), ka, lib._i64(b), kb, dim, lib._u8(out)
        )
        return out.view(np.bool_)

    def reduce_indices(self, stack: np.ndarray) -> List[int]:
        b = self._b
        buf = _ro_i64(stack)
        k, dim = buf.shape[0], buf.shape[-1]
        keep = np.empty(k, dtype=np.uint8)
        b.k_reduce(b._i64(buf), k, dim, b._u8(keep))
        return [int(i) for i in np.flatnonzero(keep)]

    def subsume_frontier(
        self, new: np.ndarray, seen: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        b = self._b
        nw = _ro_i64(new)
        kn, dim = nw.shape[0], nw.shape[-1]
        if seen is None or not seen.shape[0]:
            sn = np.empty((0, dim, dim), dtype=np.int64)
        else:
            sn = _ro_i64(seen)
        ks = sn.shape[0]
        keep = np.empty(kn, dtype=np.uint8)
        drop = np.empty(ks, dtype=np.uint8)
        b.k_subsume(
            b._i64(nw), kn, b._i64(sn), ks, dim, b._u8(keep), b._u8(drop)
        )
        return keep.view(np.bool_), drop.view(np.bool_)

    def hidden_post_step(
        self,
        stack: np.ndarray,
        guard: Sequence[Constraint],
        resets: Sequence[int],
        shifts: Sequence[Tuple[int, int]],
        invariant: Sequence[Constraint],
        delay: bool,
    ) -> np.ndarray:
        b = self._b
        buf, copied = _inplace_i64(stack)
        k, dim = buf.shape[0], buf.shape[-1]
        g = marshal_constraints(guard)
        r = marshal_clocks(resets)
        s = marshal_pairs(shifts)
        inv = marshal_constraints(invariant)
        keep = np.empty(k, dtype=np.uint8)
        b.k_hidden_post(
            b._i64(buf), k, dim,
            b._i64(g), g.shape[0],
            b._i64(r), r.shape[0],
            b._i64(s), s.shape[0],
            b._i64(inv), inv.shape[0],
            1 if delay else 0,
            b._u8(keep),
        )
        if copied:
            stack[...] = buf
        return keep.view(np.bool_)

    def any_hidden_post(
        self,
        stack: np.ndarray,
        guard: Sequence[Constraint],
        resets: Sequence[int],
        shifts: Sequence[Tuple[int, int]],
        invariant: Sequence[Constraint],
    ) -> bool:
        b = self._b
        buf, _ = _inplace_i64(stack)
        k, dim = buf.shape[0], buf.shape[-1]
        g = marshal_constraints(guard)
        r = marshal_clocks(resets)
        s = marshal_pairs(shifts)
        inv = marshal_constraints(invariant)
        return bool(
            b.k_any_hidden_post(
                b._i64(buf), k, dim,
                b._i64(g), g.shape[0],
                b._i64(r), r.shape[0],
                b._i64(s), s.shape[0],
                b._i64(inv), inv.shape[0],
            )
        )
