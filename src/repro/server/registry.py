"""Shared spec bundles and the global session/state budget.

Two concerns the asyncio server keeps *outside* the per-connection
handlers:

* :class:`SpecResolver` — builds and caches :class:`SpecBundle`\\ s (the
  compiled arena/plant systems plus the synthesized strategy) keyed by
  the canonical ``hello.spec`` description.  Strategy synthesis is the
  expensive, shareable part of a session; a thousand sessions against
  the same spec solve the game once and share the per-network semantic
  cache bundles that come with the shared :class:`~repro.semantics.system.System`
  objects.

* :class:`SessionRegistry` — admission control.  Every live session
  accounts the states its spec monitor currently tracks (1 for exact
  monitors, the symbolic member count for estimated ones, reported live
  through the :class:`~repro.semantics.compose.StateEstimate` growth
  hook).  When the *global* state budget or the session cap is
  exceeded, the least-recently-active other session is evicted — it
  receives an INCONCLUSIVE verdict frame (eviction is fail-sound: no
  verdict is invented, the session just ends inconclusive) and its
  connection closes.  If evictions cannot free enough (one session's
  own growth blows the whole budget), the *offender* is cut the same
  way — backpressure, never an abort of the server.
"""

from __future__ import annotations

import concurrent.futures
import json
import threading
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..game.cooperative import CooperativeStrategy
from ..game.solver import TwoPhaseSolver
from ..game.strategy import Strategy
from ..semantics.system import System
from ..tctl.query import parse_query
from ..util import counters
from .protocol import ProtocolError

__all__ = ["SessionRegistry", "SpecBundle", "SpecResolver"]


@dataclass
class SpecBundle:
    """Everything sessions against one spec share (read-only after build)."""

    key: str
    arena: System
    plant: System
    strategy: object  # Strategy | CooperativeStrategy
    winning: bool
    query: str


def _build_networks(desc: dict):
    """``hello.spec`` → (arena Network, plant Network, default query)."""
    if "model" in desc:
        name = desc["model"]
        if name == "smartlight":
            from ..models.smartlight import smartlight_network, smartlight_plant

            return (
                smartlight_network(),
                smartlight_plant(),
                "control: A<> IUT.Bright",
            )
        if name == "lep":
            from ..models.lep import TP1, lep_network, lep_plant

            n = desc.get("n", 3)
            if not isinstance(n, int) or not 2 <= n <= 8:
                raise ProtocolError(f"lep size n={n!r} out of range 2..8")
            return lep_network(n), lep_plant(n), TP1
        raise ProtocolError(f"unknown model {desc['model']!r}")
    if "family" in desc or "seed" in desc:
        from ..gen.networks import generate_instance, mutate_instance

        seed = desc.get("seed")
        if not isinstance(seed, int):
            raise ProtocolError(f"spec.seed must be an integer, got {seed!r}")
        family = desc.get("family")
        if family is not None and not isinstance(family, str):
            raise ProtocolError(f"spec.family must be a string, got {family!r}")
        mutation_seed = desc.get("mutation_seed")
        try:
            if mutation_seed is None:
                instance = generate_instance(seed, family)
            elif isinstance(mutation_seed, int):
                instance = mutate_instance(seed, family, mutation_seed)
            else:
                raise ProtocolError(
                    f"spec.mutation_seed must be an integer, got"
                    f" {mutation_seed!r}"
                )
        except ValueError as err:  # unknown family
            raise ProtocolError(str(err)) from err
        return instance.arena, instance.plant, instance.query
    raise ProtocolError(
        "spec must name a 'model' or a generated 'family'/'seed' instance"
    )


class SpecResolver:
    """Build-once cache of :class:`SpecBundle` keyed by spec description."""

    def __init__(
        self,
        *,
        time_limit: Optional[float] = None,
        allow_cooperative: bool = True,
        warm_cache: Optional[str] = None,
    ):
        self.time_limit = time_limit
        self.allow_cooperative = allow_cooperative
        #: Win-set solve cache directory (:mod:`repro.game.warm`): specs
        #: already synthesized by any process sharing the directory —
        #: past server runs, campaign workers — restore their converged
        #: win-sets instead of re-solving.
        self.warm_cache = warm_cache
        self._warm = None
        if warm_cache is not None:
            from ..game.warm import resolve_cache

            self._warm = resolve_cache(warm_cache)
        self._bundles: Dict[str, SpecBundle] = {}
        # The lock only guards the bundle and in-flight maps — never the
        # synthesis itself.  Concurrent requests for the *same* canonical
        # spec dedupe onto one in-flight future (one build, everyone
        # shares it); requests for *different* specs synthesize in
        # parallel worker threads instead of serializing behind a single
        # cold spec, which matters under a cold cache at accept time.
        self._lock = threading.Lock()
        self._inflight: Dict[str, concurrent.futures.Future] = {}

    @staticmethod
    def canonical_key(desc: dict) -> str:
        try:
            return json.dumps(desc, sort_keys=True, separators=(",", ":"))
        except (TypeError, ValueError) as err:
            raise ProtocolError(f"unserializable spec description: {err}")

    def _build(self, desc: dict, key: str) -> SpecBundle:
        arena_net, plant_net, default_query = _build_networks(desc)
        query = desc.get("query", default_query)
        if not isinstance(query, str):
            raise ProtocolError(f"spec.query must be a string: {query!r}")
        arena = System(arena_net)
        plant = System(plant_net)
        if self._warm is not None:
            from ..game.warm import warm_solve

            result = warm_solve(
                arena,
                parse_query(query),
                cache=self._warm,
                time_limit=self.time_limit,
            )
        else:
            result = TwoPhaseSolver(
                arena, parse_query(query), time_limit=self.time_limit
            ).solve()
        if result.winning:
            strategy: object = Strategy(result)
        elif self.allow_cooperative:
            strategy = CooperativeStrategy(result)
        else:
            raise ProtocolError(
                f"no winning strategy for {query!r} and cooperative"
                " fallback disabled"
            )
        return SpecBundle(key, arena, plant, strategy, result.winning, query)

    def resolve(self, desc: dict) -> SpecBundle:
        """The shared bundle for a ``hello.spec`` description (cached).

        Blocking (synthesis!) — the server calls it via a worker thread.
        The first request for a spec builds; concurrent requests for the
        same spec wait on that build's future; other specs proceed
        independently.  A failed build is not cached — a later request
        retries (and its waiters share the retry).
        """
        if not isinstance(desc, dict):
            raise ProtocolError(f"spec must be an object, got {desc!r}")
        key = self.canonical_key(desc)
        bundle = self._bundles.get(key)
        if bundle is not None:
            counters.inc("server.bundle_hits")
            return bundle
        with self._lock:
            bundle = self._bundles.get(key)
            if bundle is not None:
                counters.inc("server.bundle_hits")
                return bundle
            future = self._inflight.get(key)
            owner = future is None
            if owner:
                future = concurrent.futures.Future()
                self._inflight[key] = future
        if not owner:
            counters.inc("server.bundle_waits")
            return future.result()
        counters.inc("server.bundle_builds")
        try:
            bundle = self._build(desc, key)
        except BaseException as err:
            with self._lock:
                self._inflight.pop(key, None)
            future.set_exception(err)
            raise
        with self._lock:
            self._bundles[key] = bundle
            self._inflight.pop(key, None)
        future.set_result(bundle)
        return bundle

    def __len__(self) -> int:
        return len(self._bundles)


@dataclass
class SessionHandle:
    """One live session's seat in the registry."""

    sid: int
    #: Called (once) by the registry to cut this session: must deliver
    #: the closing frame and close the transport, without raising.
    evict: Callable[[str], None]
    states: int = 1
    stamp: int = 0
    evicted: Optional[str] = None

    def __hash__(self) -> int:
        return self.sid


@dataclass
class RegistryStats:
    started: int = 0
    finished: int = 0
    evicted: int = 0
    #: Sessions whose peer vanished mid-frame (the seat was released on
    #: the spot; this just makes the disconnect observable).
    disconnected: int = 0
    peak_sessions: int = 0
    peak_states: int = 0

    def to_dict(self) -> dict:
        return dict(self.__dict__)


class SessionRegistry:
    """Admission control: session cap + global symbolic-state budget."""

    def __init__(
        self,
        *,
        max_sessions: int = 1024,
        max_total_states: int = 100_000,
    ):
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if max_total_states < 1:
            raise ValueError("max_total_states must be >= 1")
        self.max_sessions = max_sessions
        self.max_total_states = max_total_states
        self._sessions: Dict[int, SessionHandle] = {}
        self._clock = 0
        self._next_sid = 0
        self._total_states = 0
        self.stats = RegistryStats()

    # ------------------------------------------------------------------

    @property
    def total_states(self) -> int:
        return self._total_states

    def __len__(self) -> int:
        return len(self._sessions)

    def _lru(self, but: SessionHandle) -> Optional[SessionHandle]:
        victim: Optional[SessionHandle] = None
        for handle in self._sessions.values():
            if handle is but:
                continue
            if victim is None or handle.stamp < victim.stamp:
                victim = handle
        return victim

    def _evict(self, handle: SessionHandle, reason: str) -> None:
        self._drop(handle)
        handle.evicted = reason
        self.stats.evicted += 1
        counters.inc("server.evictions")
        handle.evict(reason)

    def _drop(self, handle: SessionHandle) -> None:
        if self._sessions.pop(handle.sid, None) is not None:
            self._total_states -= handle.states

    def _enforce_budget(self, current: SessionHandle) -> None:
        """Evict LRU sessions until the budget holds; offender last."""
        while self._total_states > self.max_total_states:
            victim = self._lru(current)
            if victim is None:
                # The current session alone blew the global budget:
                # backpressure lands on the offender.
                self._evict(
                    current,
                    f"global state budget exceeded"
                    f" ({self._total_states + current.states - current.states}"
                    f" > {self.max_total_states} tracked states)",
                )
                return
            self._evict(
                victim,
                f"evicted (LRU) under global state budget"
                f" ({self.max_total_states} tracked states)",
            )

    # ------------------------------------------------------------------

    def admit(self, evict: Callable[[str], None]) -> SessionHandle:
        """Seat a new session, evicting the LRU one if the cap is hit."""
        self._clock += 1
        self._next_sid += 1
        handle = SessionHandle(self._next_sid, evict, states=1, stamp=self._clock)
        while len(self._sessions) >= self.max_sessions:
            victim = self._lru(handle)
            if victim is None:  # max_sessions >= 1, so only when empty
                break
            self._evict(
                victim,
                f"evicted (LRU) under session cap ({self.max_sessions})",
            )
        self._sessions[handle.sid] = handle
        self._total_states += handle.states
        self.stats.started += 1
        self.stats.peak_sessions = max(
            self.stats.peak_sessions, len(self._sessions)
        )
        self._enforce_budget(handle)
        return handle

    def touch(self, handle: SessionHandle, states: int) -> None:
        """Refresh recency + per-session state usage; enforce the budget."""
        if handle.sid not in self._sessions:
            return  # already evicted or released
        self._clock += 1
        handle.stamp = self._clock
        self._total_states += states - handle.states
        handle.states = states
        self.stats.peak_states = max(self.stats.peak_states, self._total_states)
        self._enforce_budget(handle)

    def release(self, handle: SessionHandle) -> None:
        """A session finished normally (or its connection dropped)."""
        if handle.sid in self._sessions:
            self._drop(handle)
            self.stats.finished += 1

    def evict_all(self, reason: str) -> int:
        """Evict every live session (the server-drain path); returns
        how many were cut.  Each eviction is fail-sound: the victim
        gets an INCONCLUSIVE verdict frame and its transport closes."""
        handles = list(self._sessions.values())
        for handle in handles:
            self._evict(handle, reason)
        return len(handles)
