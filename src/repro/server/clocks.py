"""Session clocks: who owns time during a ``wait``.

* :class:`VirtualClock` — the *client* owns time.  After the server
  grants a wait deadline, it simply awaits the client's next frame
  (``output`` or ``quiet``), whose ``delay`` field is taken at face
  value (and validated against the deadline by the session).  Logical
  time runs as fast as the wire: deterministic, and what the parity
  tests and load benchmarks use.

* :class:`RealTimeClock` — the *server* owns time.  A wait deadline of
  ``d`` time units is armed as a wall-clock timer of ``d * timescale``
  seconds; if the client's ``output`` frame arrives first, its delay is
  *stamped by the server* from the measured wall time (quantized to
  ``resolution`` time units, capped at the deadline — client-supplied
  delays are ignored), and an expired timer synthesizes the ``quiet``
  frame.  This is the UPPAAL-TRON deployment mode against live
  implementations.

Both expose one coroutine::

    frame = await clock.observe(recv, deadline)

where ``recv`` awaits the next client frame and ``deadline`` is the
granted wait in model time units.
"""

from __future__ import annotations

import asyncio
from fractions import Fraction
from typing import Awaitable, Callable, Optional

from .protocol import ProtocolError, encode_delay

__all__ = ["RealTimeClock", "VirtualClock", "make_clock"]

Recv = Callable[[], Awaitable[dict]]


class VirtualClock:
    """Client-owned logical time (deterministic; the default)."""

    mode = "virtual"

    def __init__(self, observe_timeout: Optional[float] = None):
        #: Wall-clock guard against a peer that never answers a wait;
        #: None trusts the transport (tests, loopback).
        self.observe_timeout = observe_timeout

    async def observe(self, recv: Recv, deadline: Fraction) -> dict:
        if self.observe_timeout is None:
            return await recv()
        try:
            return await asyncio.wait_for(recv(), timeout=self.observe_timeout)
        except asyncio.TimeoutError:
            raise ProtocolError(
                f"peer answered no wait frame within {self.observe_timeout}s"
            ) from None


class RealTimeClock:
    """Server-owned wall-clock time (online testing against live IUTs)."""

    mode = "realtime"

    def __init__(
        self,
        timescale: float = 1.0,
        resolution: Fraction = Fraction(1, 100),
    ):
        if timescale <= 0:
            raise ValueError("timescale must be positive")
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        #: Wall seconds per model time unit.
        self.timescale = timescale
        #: Grid (in model time units) observed delays are quantized to;
        #: exact rationals keep the monitors' DBM arithmetic sound.
        self.resolution = resolution

    def _quantize(self, seconds: float, deadline: Fraction) -> Fraction:
        units = Fraction(seconds) / Fraction(self.timescale)
        snapped = round(units / self.resolution) * self.resolution
        if snapped < 0:
            return Fraction(0)
        return min(snapped, deadline)

    async def observe(self, recv: Recv, deadline: Fraction) -> dict:
        loop = asyncio.get_running_loop()
        start = loop.time()
        try:
            frame = await asyncio.wait_for(
                recv(), timeout=float(deadline) * self.timescale
            )
        except asyncio.TimeoutError:
            return {"type": "quiet", "delay": encode_delay(deadline)}
        stamped = self._quantize(loop.time() - start, deadline)
        if frame.get("type") in ("output", "quiet"):
            frame = dict(frame)
            frame["delay"] = encode_delay(stamped)
        return frame


def make_clock(
    mode: str,
    *,
    timescale: float = 1.0,
    resolution: Fraction = Fraction(1, 100),
    observe_timeout: Optional[float] = None,
):
    """A clock from its CLI/hello name (``virtual`` | ``realtime``)."""
    if mode == "virtual":
        return VirtualClock(observe_timeout=observe_timeout)
    if mode == "realtime":
        return RealTimeClock(timescale=timescale, resolution=resolution)
    raise ValueError(f"unknown clock mode {mode!r} (virtual | realtime)")
