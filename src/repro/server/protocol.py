"""The wire protocol: newline-delimited JSON frames.

One frame per line, UTF-8 JSON objects with a ``type`` field, ``\\n``
terminated — trivially debuggable with ``nc``/``socat`` and language
agnostic.  Delays are exact rationals encoded as strings (``"3/2"``,
``"7"``); floats never cross the wire.

Session lifecycle (server = tester, client = implementation under test)::

    C -> S   {"type": "hello", "spec": {...}, "config": {...}}
    S -> C   {"type": "ready", "session": ID, "winning": true}
    S -> C   {"type": "input", "label": L, "updates": [[name, idx, v]..]}
    C -> S   {"type": "input-result", "accepted": true}
    S -> C   {"type": "wait", "deadline": "5/2"}
    C -> S   {"type": "output", "delay": "3/2", "label": L}
           | {"type": "quiet", "delay": "5/2"}
    S -> C   {"type": "verdict", "verdict": "pass", ...}    (terminal)
    S -> C   {"type": "error", "message": ...}              (terminal)

``hello.spec`` selects the specification: ``{"model": "smartlight"}`` or
``{"family": F, "seed": N}`` (plus optional ``"mutation_seed"``) for a
generated instance, with an optional ``"query"`` test-purpose override.
``hello.config`` carries :class:`~repro.testing.session.SessionConfig`
fields (``max_states``, ``max_iterations``, ``relativized``) plus
``"profile": true`` to get the session's op-counter profile back in the
verdict frame.

A ``quiet`` with ``delay`` *short of* the deadline is legal and re-enters
the strategy (how a simulated IUT reports an internal step, or a
real-time driver a timer tick).  Any malformed, oversized, out-of-order,
or truncated frame costs *that session* an ``error`` frame and its
connection — never the server, never another session.
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Optional

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "decode_frame",
    "encode_delay",
    "encode_frame",
    "frame_field",
    "parse_delay",
    "updates_from_wire",
    "updates_to_wire",
]

PROTOCOL_VERSION = 1

#: Upper bound on one encoded frame; a peer shipping more per line is
#: malformed by definition (frames carry labels and rationals, not data).
MAX_FRAME_BYTES = 64 * 1024


class ProtocolError(ValueError):
    """A frame violated the wire protocol (malformed, oversized, junk)."""


def encode_frame(frame: dict) -> bytes:
    """One frame as a newline-terminated JSON line."""
    return (
        json.dumps(frame, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode_frame(line: bytes) -> dict:
    """Parse one received line into a frame dict, strictly."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise ProtocolError(f"malformed frame: {err}") from err
    if not isinstance(frame, dict):
        raise ProtocolError(f"frame is not an object: {frame!r}")
    kind = frame.get("type")
    if not isinstance(kind, str):
        raise ProtocolError("frame has no string 'type' field")
    return frame


def encode_delay(d: Fraction) -> str:
    """Exact rational wire form: ``"7"`` or ``"3/2"``."""
    return str(d)


def parse_delay(value: object, *, field: str = "delay") -> Fraction:
    """Parse a wire delay; rejects junk and negatives."""
    if not isinstance(value, str):
        raise ProtocolError(f"{field} must be a rational string, got {value!r}")
    try:
        d = Fraction(value)
    except (ValueError, ZeroDivisionError) as err:
        raise ProtocolError(f"bad {field} {value!r}: {err}") from err
    if d < 0:
        raise ProtocolError(f"negative {field} {value!r}")
    return d


def frame_field(frame: dict, name: str, kind: type, *, required: bool = True):
    """Fetch+type-check one frame field (ProtocolError on violation)."""
    if name not in frame:
        if required:
            raise ProtocolError(
                f"{frame.get('type', '?')} frame missing field {name!r}"
            )
        return None
    value = frame[name]
    if not isinstance(value, kind) or (kind is int and isinstance(value, bool)):
        raise ProtocolError(
            f"{frame.get('type', '?')} frame field {name!r} must be"
            f" {kind.__name__}, got {type(value).__name__}"
        )
    return value


def updates_to_wire(updates) -> list:
    """``(name, index_or_None, value)`` triples as JSON arrays."""
    return [[name, index, value] for name, index, value in updates]


def updates_from_wire(payload: Optional[list]) -> list:
    """Inverse of :func:`updates_to_wire`, strictly validated."""
    if payload is None:
        return []
    if not isinstance(payload, list):
        raise ProtocolError("updates must be a list")
    out = []
    for item in payload:
        if (
            not isinstance(item, list)
            or len(item) != 3
            or not isinstance(item[0], str)
            or not (item[1] is None or isinstance(item[1], int))
            or not isinstance(item[2], int)
        ):
            raise ProtocolError(f"bad update triple {item!r}")
        out.append((item[0], item[1], item[2]))
    return out
