"""Online test server: many concurrent IUTs over one asyncio loop.

The network driver over the transport-agnostic
:class:`~repro.testing.session.TestSession` core.  Start one with
``python -m repro.server --port 0`` (prints the bound port) and connect
anything that speaks the newline-JSON protocol of
:mod:`repro.server.protocol`; :class:`IUTClient` is the reference peer.
"""

from .client import IUTClient, run_remote_test, session_config_payload
from .clocks import RealTimeClock, VirtualClock, make_clock
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
)
from .registry import SessionRegistry, SpecBundle, SpecResolver
from .server import ServerConfig, TestServer

__all__ = [
    "IUTClient",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RealTimeClock",
    "ServerConfig",
    "SessionRegistry",
    "SpecBundle",
    "SpecResolver",
    "TestServer",
    "VirtualClock",
    "decode_frame",
    "encode_frame",
    "make_clock",
    "run_remote_test",
    "session_config_payload",
]
