"""Client-side driver: a :class:`SimulatedImplementation` on the wire.

The mirror image of the in-process executor loop: where
:class:`~repro.testing.executor.TestExecutor` answers session actions
with direct method calls, :class:`IUTClient` answers the server's
``input``/``wait`` frames on behalf of a simulated implementation —
byte-for-byte the same event stream, so the verdict parity tests compare
a loopback run against ``TestExecutor.run()`` at a fixed seed.

Also the reference for wiring a *real* implementation: anything that can
answer ``input`` frames with ``input-result`` and ``wait`` frames with
``output``/``quiet`` is a valid peer.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Tuple, Union

from ..testing.implementation import SimulatedImplementation
from ..testing.session import SessionConfig
from ..util import counters
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_delay,
    encode_frame,
    frame_field,
    parse_delay,
    updates_from_wire,
)

__all__ = ["IUTClient", "run_remote_test", "session_config_payload"]

#: The synthetic terminal frame for a connection that died without a
#: verdict — the one outcome :func:`run_remote_test` retries.
_CONN_LOST = "connection closed without a verdict"


def session_config_payload(
    config: Union[SessionConfig, dict, None], *, profile: bool = False
) -> Optional[dict]:
    """The ``hello.config`` wire payload for a session config."""
    if isinstance(config, dict):
        payload = dict(config)
    elif isinstance(config, SessionConfig):
        payload = {
            "max_iterations": config.max_iterations,
            "max_states": config.max_states,
            "relativized": config.relativized,
        }
    elif config is None:
        payload = {}
    else:
        raise TypeError(f"config must be SessionConfig or dict: {config!r}")
    if profile:
        payload["profile"] = True
    return payload or None


class IUTClient:
    """One connection to a test server; sessions run sequentially."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "IUTClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    @classmethod
    async def connect_unix(cls, path: str) -> "IUTClient":
        reader, writer = await asyncio.open_unix_connection(path)
        return cls(reader, writer)

    @classmethod
    async def connect_retry(
        cls,
        host: str,
        port: int,
        *,
        attempts: int = 5,
        base_delay: float = 0.05,
    ) -> "IUTClient":
        """Connect with exponential backoff — rides out a server that
        is still starting, restarting, or finishing a drain."""
        delay = base_delay
        last: Optional[Exception] = None
        for attempt in range(max(1, attempts)):
            try:
                return await cls.connect(host, port)
            except (ConnectionError, OSError) as err:
                last = err
                counters.inc("client.connect_retries")
                if attempt + 1 < attempts:
                    await asyncio.sleep(delay)
                    delay *= 2
        raise ConnectionError(
            f"could not connect to {host}:{port}"
            f" after {attempts} attempts: {last}"
        )

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "IUTClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------

    async def _send(self, frame: dict) -> None:
        self.writer.write(encode_frame(frame))
        await self.writer.drain()

    async def _read(self) -> Optional[dict]:
        line = await self.reader.readline()
        if not line:
            return None  # server closed (eviction lands as a verdict first)
        return decode_frame(line.rstrip(b"\r\n"))

    async def ping(self) -> dict:
        """Heartbeat: send ``ping``, wait for the ``pong``.  Resets the
        server's idle deadline; use between sessions (mid-session the
        :meth:`run_session` loop absorbs stray pongs)."""
        await self._send({"type": "ping"})
        frame = await self._read()
        if frame is None:
            raise ConnectionError("connection closed during ping")
        if frame.get("type") != "pong":
            raise ProtocolError(f"expected pong, got {frame.get('type')!r}")
        return frame

    async def run_session(
        self,
        implementation: SimulatedImplementation,
        spec: dict,
        *,
        config: Union[SessionConfig, dict, None] = None,
        profile: bool = False,
    ) -> dict:
        """Drive one full session; returns the terminal frame.

        The terminal frame is a ``verdict`` (possibly with
        ``"evicted": true``) or an ``error``; a connection that dies
        without one is reported as a synthetic ``error`` frame.
        """
        imp = implementation
        imp.reset()
        hello = {
            "type": "hello",
            "protocol": PROTOCOL_VERSION,
            "spec": spec,
        }
        payload = session_config_payload(config, profile=profile)
        if payload:
            hello["config"] = payload
        await self._send(hello)
        while True:
            frame = await self._read()
            if frame is None:
                return {"type": "error", "message": _CONN_LOST}
            kind = frame["type"]
            if kind in ("ready", "pong"):
                continue
            if kind in ("verdict", "error"):
                return frame
            if kind == "input":
                label = frame_field(frame, "label", str)
                updates = updates_from_wire(frame.get("updates"))
                accepted = imp.give_input(label, updates)
                await self._send(
                    {"type": "input-result", "accepted": accepted}
                )
            elif kind == "wait":
                deadline = parse_delay(
                    frame.get("deadline"), field="deadline"
                )
                pending = imp.next_output()
                if pending is not None and pending.delay <= deadline:
                    # The implementation acts first (or simultaneously);
                    # an internal move is a partial quiet elapse.
                    d = pending.delay
                    out = imp.advance(d)
                    if out is None:
                        await self._send(
                            {"type": "quiet", "delay": encode_delay(d)}
                        )
                    else:
                        await self._send(
                            {
                                "type": "output",
                                "delay": encode_delay(d),
                                "label": out,
                            }
                        )
                else:
                    imp.advance(deadline)
                    await self._send(
                        {"type": "quiet", "delay": encode_delay(deadline)}
                    )
            else:
                raise ProtocolError(f"unexpected server frame {kind!r}")


def run_remote_test(
    address: Union[Tuple[str, int], str],
    implementation: SimulatedImplementation,
    spec: dict,
    *,
    config: Union[SessionConfig, dict, None] = None,
    profile: bool = False,
    retries: int = 0,
    backoff: float = 0.05,
) -> dict:
    """Synchronous one-shot: connect, run one session, disconnect.

    ``address`` is ``(host, port)`` for TCP or a path string for a UNIX
    socket.  Returns the terminal frame.

    With ``retries`` > 0, a connection that dies *without a verdict*
    (refused connect, mid-session drop) is retried up to that many
    times with exponential ``backoff``, reconnecting from scratch —
    fail-sound, because the session restarts from ``hello`` with the
    implementation reset, never resuming a half-run.  Server ``error``
    frames and real verdicts are final, never retried.
    """

    async def connect() -> IUTClient:
        if isinstance(address, str):
            return await IUTClient.connect_unix(address)
        return await IUTClient.connect(*address)

    async def go() -> dict:
        frame = {"type": "error", "message": _CONN_LOST}
        for attempt in range(max(1, retries + 1)):
            if attempt:
                counters.inc("client.reconnects")
                await asyncio.sleep(backoff * (2 ** (attempt - 1)))
            try:
                client = await connect()
            except (ConnectionError, OSError) as err:
                frame = {
                    "type": "error",
                    "message": f"{_CONN_LOST}: connect failed: {err}",
                }
                continue
            try:
                async with client:
                    frame = await client.run_session(
                        implementation, spec, config=config, profile=profile
                    )
            except (
                ConnectionError,
                OSError,
                asyncio.IncompleteReadError,
            ) as err:
                frame = {
                    "type": "error",
                    "message": f"{_CONN_LOST}: {err}",
                }
                continue
            if frame.get("type") == "error" and str(
                frame.get("message", "")
            ).startswith(_CONN_LOST):
                continue  # transient: the connection died verdict-less
            return frame
        return frame

    return asyncio.run(go())
