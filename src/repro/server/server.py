"""The asyncio test server: many sessions, one event loop.

One :class:`TestServer` multiplexes any number of concurrent
implementations-under-test, each on its own TCP or UNIX-socket
connection speaking the newline-JSON protocol of
:mod:`repro.server.protocol`.  Per connection the handler runs sessions
*sequentially* (hello → frames → verdict, repeat until EOF); across
connections everything interleaves on the loop.

Division of labour:

* the sans-IO :class:`~repro.testing.session.TestSession` makes every
  testing decision — the handler only moves frames, so verdicts are
  identical to the in-process :class:`~repro.testing.executor.TestExecutor`
  by construction;
* :class:`~repro.server.registry.SpecResolver` shares compiled systems
  and synthesized strategies across sessions (synthesis runs in a worker
  thread so the loop keeps serving);
* :class:`~repro.server.registry.SessionRegistry` enforces the global
  tracked-state budget, fed live through each session monitor's
  :class:`~repro.semantics.compose.StateEstimate` growth hook;
* a :mod:`clock <repro.server.clocks>` decides who owns time during
  waits (client-owned virtual time or server-stamped wall time).

Error containment: any protocol violation costs *that session* an
``error`` frame and its connection — the server and every other session
keep running.

Degradation under faults (network or injected, see :mod:`repro.faults`):

* a peer that goes silent past ``idle_timeout`` costs its session a
  fail-sound INCONCLUSIVE verdict (reason: idle deadline), never a
  parked handler task — clients keep a long wait alive with ``ping``
  frames, answered ``pong`` at any read point;
* a peer that vanishes mid-frame releases its registry seat on the spot
  (``server.disconnects`` counter + registry ``disconnected`` stat), so
  a flapping client can never leak sessions or tracked-state budget;
* :meth:`TestServer.drain` is the SIGTERM path: stop accepting, give
  in-flight sessions ``drain_grace`` seconds to finish on their own,
  then evict the stragglers to INCONCLUSIVE — no verdict is ever
  invented, no connection is left ambiguous.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Optional, Set, Tuple

from .. import faults

from ..testing.session import (
    Finish,
    SendInput,
    SessionConfig,
    SessionProtocolError,
    TestSession,
    Wait,
)
from ..testing.trace import INCONCLUSIVE
from ..util import counters
from .clocks import make_clock
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_delay,
    encode_frame,
    frame_field,
    parse_delay,
    updates_to_wire,
)
from .registry import SessionRegistry, SpecResolver

__all__ = ["ServerConfig", "TestServer"]

#: StreamReader line limit: above the protocol cap so oversized frames
#: reach :func:`decode_frame` (clean error) instead of a raw ValueError.
_READ_LIMIT = MAX_FRAME_BYTES + 4096

#: ``hello.config`` keys mapped straight onto :class:`SessionConfig`.
_CONFIG_FIELDS = {
    "max_iterations": int,
    "max_states": int,
    "relativized": bool,
}


class _Closed(Exception):
    """Peer closed the connection (EOF on the reader)."""


class _Stalled(Exception):
    """Peer went silent past the idle deadline (no frame, no ping)."""


@dataclass
class ServerConfig:
    """Everything ``python -m repro.server`` can tune."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port off the server
    unix_path: Optional[str] = None  # set → UNIX socket instead of TCP
    clock: str = "virtual"
    timescale: float = 1.0  # realtime: wall seconds per model time unit
    resolution: Fraction = Fraction(1, 100)
    observe_timeout: Optional[float] = None  # virtual-clock wall guard
    max_sessions: int = 1024
    state_budget: int = 100_000  # global tracked-states budget
    session: SessionConfig = field(default_factory=SessionConfig)
    time_limit: Optional[float] = None  # strategy-synthesis budget
    allow_cooperative: bool = True
    warm_cache: Optional[str] = None  # win-set solve cache directory
    #: Seconds a connection may sit frame-less before its session is
    #: closed with a fail-sound INCONCLUSIVE verdict.  ``ping`` frames
    #: (answered ``pong``) reset the deadline, so a slow client stays
    #: alive by heartbeating.  None = wait forever (the seed behaviour).
    idle_timeout: Optional[float] = None
    #: Seconds :meth:`TestServer.drain` lets in-flight sessions finish
    #: before evicting them to INCONCLUSIVE.
    drain_grace: float = 5.0


class TestServer:
    """Accept connections and run test sessions until closed."""

    def __init__(self, config: Optional[ServerConfig] = None):
        self.config = config or ServerConfig()
        self.resolver = SpecResolver(
            time_limit=self.config.time_limit,
            allow_cooperative=self.config.allow_cooperative,
            warm_cache=self.config.warm_cache,
        )
        self.registry = SessionRegistry(
            max_sessions=self.config.max_sessions,
            max_total_states=self.config.state_budget,
        )
        self.clock = make_clock(
            self.config.clock,
            timescale=self.config.timescale,
            resolution=self.config.resolution,
            observe_timeout=self.config.observe_timeout,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: Set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("server already started")
        if self.config.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection,
                path=self.config.unix_path,
                limit=_READ_LIMIT,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self.config.host,
                port=self.config.port,
                limit=_READ_LIMIT,
            )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (TCP) or ``(path, 0)`` (UNIX)."""
        if self._server is None:
            raise RuntimeError("server not started")
        if self.config.unix_path is not None:
            return (self.config.unix_path, 0)
        host, port = self._server.sockets[0].getsockname()[:2]
        return (host, port)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def drain(self, grace: Optional[float] = None) -> dict:
        """Graceful shutdown (the SIGTERM path): stop accepting, give
        in-flight sessions ``grace`` seconds (default
        ``config.drain_grace``) to finish on their own, then evict the
        stragglers to fail-sound INCONCLUSIVE verdicts.  Returns the
        post-drain :meth:`stats` snapshot."""
        if grace is None:
            grace = self.config.drain_grace
        counters.inc("server.drains")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        pending = {task for task in self._conn_tasks if not task.done()}
        if pending:
            _, pending = await asyncio.wait(pending, timeout=grace)
        if pending:
            # Grace expired: cut every live session the fail-sound way
            # (verdict frame queued, transport closed) and reap idle
            # connections that have no session to evict.
            self.registry.evict_all("server draining: grace period expired")
            _, pending = await asyncio.wait(pending, timeout=1.0)
            for task in pending:
                task.cancel()
        return self.stats()

    async def __aenter__(self) -> "TestServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    def stats(self) -> dict:
        """Registry + resolver stats (JSON-friendly)."""
        out = self.registry.stats.to_dict()
        out["live_sessions"] = len(self.registry)
        out["total_states"] = self.registry.total_states
        out["bundles"] = len(self.resolver)
        return out

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        counters.inc("server.connections")
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    frame = await self._read_frame(reader, writer)
                    again = await self._run_session(frame, reader, writer)
                except ProtocolError as err:
                    await self._send_error(writer, str(err))
                    return
                except _Closed:
                    return
                except _Stalled:
                    # Idle between sessions: nothing to verdict, just
                    # reclaim the connection.
                    await self._send_error(writer, "idle deadline exceeded")
                    return
                if not again:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            return  # peer vanished; its session was released in _run_session
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            # close() flushes buffered frames at the transport layer; not
            # awaiting wait_closed keeps loop shutdown from surfacing a
            # CancelledError out of every parked handler task.
            writer.close()

    async def _read_line(self, reader: asyncio.StreamReader) -> bytes:
        stall = faults.should_fire("server.conn.stall")

        async def attempt() -> bytes:
            if stall:
                # Injected silent peer: sit on the wire without a frame
                # so the idle deadline (when armed) does its job.
                await asyncio.sleep(faults.hang_seconds())
            return await reader.readline()

        timeout = self.config.idle_timeout
        if timeout is None:
            return await attempt()
        try:
            return await asyncio.wait_for(attempt(), timeout)
        except asyncio.TimeoutError:
            counters.inc("server.idle_timeouts")
            raise _Stalled() from None

    async def _read_frame(
        self,
        reader: asyncio.StreamReader,
        writer: Optional[asyncio.StreamWriter] = None,
    ) -> dict:
        while True:
            if faults.should_fire("server.conn.drop"):
                # Injected mid-frame disconnect: kill the transport so
                # the peer sees a dead connection, then unwind exactly
                # like a real peer close.
                if writer is not None:
                    writer.close()
                raise _Closed()
            try:
                line = await self._read_line(reader)
            except ValueError as err:
                # StreamReader overran its line limit: oversized frame.
                raise ProtocolError(
                    f"frame exceeds {MAX_FRAME_BYTES} bytes: {err}"
                )
            except (ConnectionError, asyncio.IncompleteReadError):
                raise _Closed() from None
            if not line:
                raise _Closed()
            frame = decode_frame(line.rstrip(b"\r\n"))
            if frame.get("type") == "ping" and writer is not None:
                # Heartbeat: answer and keep reading — the next
                # _read_line restarts the idle deadline.
                counters.inc("server.pings")
                await self._send(writer, {"type": "pong"})
                continue
            return frame

    async def _send(self, writer: asyncio.StreamWriter, frame: dict) -> None:
        writer.write(encode_frame(frame))
        try:
            await writer.drain()
        except ConnectionError:
            raise _Closed() from None

    async def _send_error(
        self, writer: asyncio.StreamWriter, message: str
    ) -> None:
        counters.inc("server.protocol_errors")
        try:
            await self._send(writer, {"type": "error", "message": message})
        except _Closed:
            pass

    # ------------------------------------------------------------------
    # One session
    # ------------------------------------------------------------------

    def _parse_hello(
        self, frame: dict
    ) -> Tuple[dict, SessionConfig, bool]:
        if frame["type"] != "hello":
            raise ProtocolError(
                f"expected a hello frame, got {frame['type']!r}"
            )
        version = frame_field(frame, "protocol", int, required=False)
        if version is not None and version != PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version {version} unsupported"
                f" (server speaks {PROTOCOL_VERSION})"
            )
        spec = frame_field(frame, "spec", dict)
        payload = frame_field(frame, "config", dict, required=False)
        config = self.config.session
        profile = False
        if payload:
            overrides = {}
            for name, value in payload.items():
                if name == "profile":
                    if not isinstance(value, bool):
                        raise ProtocolError("config.profile must be a bool")
                    profile = value
                    continue
                kind = _CONFIG_FIELDS.get(name)
                if kind is None:
                    raise ProtocolError(f"unknown config field {name!r}")
                if not isinstance(value, kind) or (
                    kind is int and isinstance(value, bool)
                ):
                    raise ProtocolError(
                        f"config.{name} must be {kind.__name__}"
                    )
                overrides[name] = value
            if overrides:
                config = config.replace(**overrides)
        return spec, config, profile

    def _make_evictor(self, writer: asyncio.StreamWriter, sid: int):
        def evict(reason: str) -> None:
            # Runs synchronously inside a registry call (possibly from
            # another session's step): queue the closing frame and close;
            # the victim's pending read then sees EOF.
            try:
                writer.write(
                    encode_frame(
                        {
                            "type": "verdict",
                            "session": sid,
                            "verdict": INCONCLUSIVE,
                            "reason": reason,
                            "iterations": 0,
                            "evicted": True,
                        }
                    )
                )
                writer.close()
            except (ConnectionError, OSError, RuntimeError):
                pass

        return evict

    async def _run_session(
        self,
        hello: dict,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """Serve one session; True to keep the connection for another."""
        spec, config, profile = self._parse_hello(hello)
        bundle = await asyncio.to_thread(self.resolver.resolve, spec)
        session = TestSession(bundle.strategy, bundle.plant, config)
        handle = self.registry.admit(self._make_evictor(writer, 0))
        handle.evict = self._make_evictor(writer, handle.sid)
        ops: Dict[str, int] = {}
        counters.inc("server.sessions")

        def on_growth(n: int) -> None:
            # Estimate grew *mid-step*: charge the budget immediately so
            # one exploding session backpressures before the step ends.
            self.registry.touch(handle, max(1, n))

        def step(fn, *args):
            # Every synchronous session step; optional per-session op
            # profile via counter capture (sync block: no awaits inside).
            if profile:
                with counters.capture(ops):
                    action = fn(*args)
            else:
                action = fn(*args)
            self._install_growth_hook(session, on_growth)
            self.registry.touch(handle, max(1, session.tracked_states))
            return action

        try:
            action = step(session.start)
            await self._send(
                writer,
                {
                    "type": "ready",
                    "session": handle.sid,
                    "protocol": PROTOCOL_VERSION,
                    "winning": bundle.winning,
                },
            )
            while True:
                if handle.evicted is not None:
                    return False  # closing frame already queued by evict()
                if isinstance(action, Finish):
                    run = action.run
                    verdict = {
                        "type": "verdict",
                        "session": handle.sid,
                        "verdict": run.verdict,
                        "reason": run.reason,
                        "iterations": run.iterations,
                        "trace": str(run.trace),
                    }
                    if profile:
                        verdict["profile"] = ops
                    await self._send(writer, verdict)
                    counters.inc("server.verdicts")
                    return True
                if isinstance(action, SendInput):
                    await self._send(
                        writer,
                        {
                            "type": "input",
                            "session": handle.sid,
                            "label": action.label,
                            "updates": updates_to_wire(action.updates),
                        },
                    )
                    frame = await self._read_frame(reader, writer)
                    if frame["type"] != "input-result":
                        raise ProtocolError(
                            f"expected input-result, got {frame['type']!r}"
                        )
                    accepted = frame_field(frame, "accepted", bool)
                    action = step(session.on_input_result, accepted)
                elif isinstance(action, Wait):
                    await self._send(
                        writer,
                        {
                            "type": "wait",
                            "session": handle.sid,
                            "deadline": encode_delay(action.deadline),
                        },
                    )
                    frame = await self.clock.observe(
                        lambda: self._read_frame(reader, writer),
                        action.deadline,
                    )
                    if frame["type"] == "output":
                        delay = parse_delay(frame.get("delay"))
                        label = frame_field(frame, "label", str)
                        action = step(session.on_output, delay, label)
                    elif frame["type"] == "quiet":
                        delay = parse_delay(frame.get("delay"))
                        action = step(session.on_elapsed, delay)
                    else:
                        raise ProtocolError(
                            f"expected output or quiet, got {frame['type']!r}"
                        )
                else:  # pragma: no cover - exhaustive over SessionAction
                    raise ProtocolError(
                        f"unknown session action {type(action).__name__}"
                    )
        except SessionProtocolError as err:
            # The peer broke the *session* protocol (bad delay, wrong
            # event order): error out this session, keep the server.
            raise ProtocolError(str(err)) from err
        except _Stalled:
            if handle.evicted is not None:
                return False
            # Fail-sound: the peer went silent, so no verdict can be
            # trusted — end the session INCONCLUSIVE and free its seat.
            counters.inc("server.stalled_sessions")
            try:
                await self._send(
                    writer,
                    {
                        "type": "verdict",
                        "session": handle.sid,
                        "verdict": INCONCLUSIVE,
                        "reason": "idle deadline exceeded"
                        f" ({self.config.idle_timeout}s without a frame)",
                        "iterations": 0,
                        "stalled": True,
                    },
                )
            except _Closed:
                pass
            return False
        except _Closed:
            if handle.evicted is not None:
                return False
            # Mid-frame disconnect: the finally below frees the
            # registry seat; record it so leaks are observable.
            counters.inc("server.disconnects")
            self.registry.stats.disconnected += 1
            raise
        finally:
            self.registry.release(handle)

    @staticmethod
    def _install_growth_hook(session: TestSession, on_growth) -> None:
        """Wire the session monitor's :class:`StateEstimate` growth hook
        to the registry.  The monitor only exists after ``start()`` (and
        only estimated monitors carry an estimate), so this runs after
        every step and installs idempotently."""
        monitor = getattr(session, "_monitor", None)
        estimate = getattr(monitor, "estimate", None)
        if estimate is not None and estimate.on_growth is not on_growth:
            estimate.on_growth = on_growth
