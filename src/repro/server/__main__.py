"""``python -m repro.server`` — run the online test server.

Examples::

    python -m repro.server --port 9000
    python -m repro.server --port 0            # ephemeral; prints the port
    python -m repro.server --unix /tmp/repro.sock
    python -m repro.server --clock realtime --timescale 0.1
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from fractions import Fraction

from ..testing.session import SessionConfig
from .server import ServerConfig, TestServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Online conformance-test server (newline-JSON protocol)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port; 0 binds an ephemeral port and prints it",
    )
    parser.add_argument(
        "--unix", metavar="PATH", help="serve on a UNIX socket instead of TCP"
    )
    parser.add_argument(
        "--clock",
        choices=("virtual", "realtime"),
        default="virtual",
        help="who owns time during waits (default: virtual = the client)",
    )
    parser.add_argument(
        "--timescale",
        type=float,
        default=1.0,
        help="realtime clock: wall seconds per model time unit",
    )
    parser.add_argument(
        "--resolution",
        type=Fraction,
        default=Fraction(1, 100),
        help="realtime clock: delay quantization grid (model time units)",
    )
    parser.add_argument(
        "--observe-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="virtual clock: wall guard per wait (default: none)",
    )
    parser.add_argument("--max-sessions", type=int, default=1024)
    parser.add_argument(
        "--state-budget",
        type=int,
        default=100_000,
        help="global tracked-states budget across all live sessions",
    )
    parser.add_argument("--max-states", type=int, default=256)
    parser.add_argument("--max-iterations", type=int, default=10_000)
    parser.add_argument(
        "--time-limit",
        type=float,
        default=None,
        help="strategy-synthesis budget per spec (seconds)",
    )
    parser.add_argument(
        "--no-cooperative",
        action="store_true",
        help="reject specs without a winning strategy instead of falling"
        " back to cooperative testing",
    )
    parser.add_argument(
        "--warm-cache",
        metavar="DIR",
        default=None,
        help="win-set solve cache directory: specs synthesized by any"
        " past run sharing the directory restore instead of re-solving",
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ServerConfig:
    return ServerConfig(
        host=args.host,
        port=args.port,
        unix_path=args.unix,
        clock=args.clock,
        timescale=args.timescale,
        resolution=args.resolution,
        observe_timeout=args.observe_timeout,
        max_sessions=args.max_sessions,
        state_budget=args.state_budget,
        session=SessionConfig(
            max_iterations=args.max_iterations, max_states=args.max_states
        ),
        time_limit=args.time_limit,
        allow_cooperative=not args.no_cooperative,
        warm_cache=args.warm_cache,
    )


async def amain(config: ServerConfig) -> None:
    server = TestServer(config)
    await server.start()
    host, port = server.address
    if config.unix_path is not None:
        print(f"listening on {host}", flush=True)
    else:
        print(f"listening on {host}:{port}", flush=True)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.close()


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(amain(config_from_args(args)))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
