"""``python -m repro.server`` — run the online test server.

Examples::

    python -m repro.server --port 9000
    python -m repro.server --port 0            # ephemeral; prints the port
    python -m repro.server --unix /tmp/repro.sock
    python -m repro.server --clock realtime --timescale 0.1
    python -m repro.server --idle-timeout 30 --drain-grace 10

SIGTERM (and SIGINT) trigger a graceful drain: the listener closes,
in-flight sessions get ``--drain-grace`` seconds to finish, stragglers
are evicted to fail-sound INCONCLUSIVE verdicts, and the final stats
snapshot prints before exit.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from fractions import Fraction

from .. import faults
from ..testing.session import SessionConfig
from .server import ServerConfig, TestServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Online conformance-test server (newline-JSON protocol)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port; 0 binds an ephemeral port and prints it",
    )
    parser.add_argument(
        "--unix", metavar="PATH", help="serve on a UNIX socket instead of TCP"
    )
    parser.add_argument(
        "--clock",
        choices=("virtual", "realtime"),
        default="virtual",
        help="who owns time during waits (default: virtual = the client)",
    )
    parser.add_argument(
        "--timescale",
        type=float,
        default=1.0,
        help="realtime clock: wall seconds per model time unit",
    )
    parser.add_argument(
        "--resolution",
        type=Fraction,
        default=Fraction(1, 100),
        help="realtime clock: delay quantization grid (model time units)",
    )
    parser.add_argument(
        "--observe-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="virtual clock: wall guard per wait (default: none)",
    )
    parser.add_argument("--max-sessions", type=int, default=1024)
    parser.add_argument(
        "--state-budget",
        type=int,
        default=100_000,
        help="global tracked-states budget across all live sessions",
    )
    parser.add_argument("--max-states", type=int, default=256)
    parser.add_argument("--max-iterations", type=int, default=10_000)
    parser.add_argument(
        "--time-limit",
        type=float,
        default=None,
        help="strategy-synthesis budget per spec (seconds)",
    )
    parser.add_argument(
        "--no-cooperative",
        action="store_true",
        help="reject specs without a winning strategy instead of falling"
        " back to cooperative testing",
    )
    parser.add_argument(
        "--warm-cache",
        metavar="DIR",
        default=None,
        help="win-set solve cache directory: specs synthesized by any"
        " past run sharing the directory restore instead of re-solving",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="close a session INCONCLUSIVE when its peer sends no frame"
        " (and no ping) for this long (default: wait forever)",
    )
    parser.add_argument(
        "--drain-grace",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="on SIGTERM: seconds in-flight sessions may finish before"
        " being evicted to INCONCLUSIVE",
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="arm a deterministic fault-injection plan (see repro.faults),"
        " e.g. 'server.conn.drop:every=50;seed=7'",
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ServerConfig:
    return ServerConfig(
        host=args.host,
        port=args.port,
        unix_path=args.unix,
        clock=args.clock,
        timescale=args.timescale,
        resolution=args.resolution,
        observe_timeout=args.observe_timeout,
        max_sessions=args.max_sessions,
        state_budget=args.state_budget,
        session=SessionConfig(
            max_iterations=args.max_iterations, max_states=args.max_states
        ),
        time_limit=args.time_limit,
        allow_cooperative=not args.no_cooperative,
        warm_cache=args.warm_cache,
        idle_timeout=args.idle_timeout,
        drain_grace=args.drain_grace,
    )


async def amain(config: ServerConfig) -> None:
    server = TestServer(config)
    await server.start()
    host, port = server.address
    if config.unix_path is not None:
        print(f"listening on {host}", flush=True)
    else:
        print(f"listening on {host}:{port}", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):
            pass  # non-mainloop / platform without signal support
    serving = asyncio.ensure_future(server.serve_forever())
    stopping = asyncio.ensure_future(stop.wait())
    try:
        await asyncio.wait(
            {serving, stopping}, return_when=asyncio.FIRST_COMPLETED
        )
        if stop.is_set():
            print("draining...", flush=True)
            stats = await server.drain()
            print("drained " + json.dumps(stats, sort_keys=True), flush=True)
    except asyncio.CancelledError:
        pass
    finally:
        for task in (serving, stopping):
            task.cancel()
        await asyncio.gather(serving, stopping, return_exceptions=True)
        await server.close()


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.faults:
        faults.install(args.faults)
    try:
        asyncio.run(amain(config_from_args(args)))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
