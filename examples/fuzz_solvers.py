#!/usr/bin/env python
"""Fuzzing the solvers: a guided tour of :mod:`repro.gen`.

The paper evaluates on three hand-built case studies; ``repro.gen`` mass
produces new ones.  This example

1. generates a few instances from each scenario family and shows their
   shape, structural hash, and game verdict;
2. runs the full differential oracle (solver cross-check, symbolic vs
   concrete semantics, tioco/rtioco self-conformance) on a small
   campaign, exactly like ``python -m repro.gen.cli`` does;
3. demonstrates shrinking on an artificially injected disagreement.

Run:  python examples/fuzz_solvers.py
"""

from repro import System, TwoPhaseSolver, parse_query
from repro.gen import generate_instance, run_campaign, shrink_instance
from repro.gen.differential import CHECKS, FAIL, OK, CheckResult, DiffConfig
from repro.gen.networks import DEFAULT_FAMILIES


def tour_families() -> None:
    print("=== scenario families ===")
    for family in DEFAULT_FAMILIES:
        for seed in range(2):
            instance = generate_instance(seed, family)
            result = TwoPhaseSolver(
                System(instance.arena), parse_query(instance.query)
            ).solve()
            verdict = "controllable" if result.winning else "uncontrollable"
            print(f"  {instance.describe()}")
            print(
                f"      hash={instance.structural_hash()[:12]}"
                f"  nodes={result.nodes_explored}  verdict={verdict}"
            )


def small_campaign() -> None:
    print("\n=== differential campaign (30 instances) ===")
    summary = run_campaign(
        count=30,
        seed=0,
        diff_config=DiffConfig(sim_runs=1, sim_steps=20, conf_steps=15),
        zone_trials=10,
    )
    print(summary.format())


def demonstrate_shrinking() -> None:
    """Inject a fake 'bug' that fires on any network with an invariant,
    then watch the shrinker strip the instance down around it."""
    print("\n=== shrinking a (synthetic) disagreement ===")

    def fake_check(instance, cfg):
        invariants = sum(
            1
            for aut in instance.spec.automata
            for loc in aut.locations
            if loc.invariant is not None
        )
        edges = sum(len(aut.edges) for aut in instance.spec.automata)
        instance.arena  # the reproducer must still build
        if invariants:
            return CheckResult(
                "fake", FAIL, f"{invariants} invariants, {edges} edges"
            )
        return CheckResult("fake", OK)

    CHECKS["fake"] = fake_check
    try:
        instance = generate_instance(11, "chain")
        print(f"  original: {instance.describe()}")
        shrunk = shrink_instance(instance, "fake")
        print(f"  shrunk:   {shrunk.describe()}")
        print(
            "  edges:"
            f" {sum(len(a.edges) for a in instance.spec.automata)} ->"
            f" {sum(len(a.edges) for a in shrunk.spec.automata)},"
            " same seed, same failure"
        )
    finally:
        del CHECKS["fake"]


if __name__ == "__main__":
    tour_families()
    small_campaign()
    demonstrate_shrinking()
