#!/usr/bin/env python
"""Cooperative testing — the paper's future-work item 4.

When a test purpose admits no winning strategy (the plant can always
dodge), the paper proposes a "small retreat": steer toward the goal and
rely on the plant's cooperation.  Verdicts: pass when the goal is
reached, fail only on genuine tioco violations, inconclusive when the
plant declines to cooperate.

The demo system: a server that answers each request with ``grant!`` or
``deny!``, its own choice — so "force a grant" is not winnable, but a
cooperative server grants immediately.

Run:  python examples/cooperative_testing.py
"""

from repro import System, execute_test, parse_query, solve_cooperative
from repro.game.solver import solve_reachability_game
from repro.ta import NetworkBuilder
from repro.testing import EagerPolicy, SimulatedImplementation


def server_arena():
    net = NetworkBuilder("server")
    net.clock("x")
    net.input_channel("request")
    net.output_channel("grant", "deny")
    s = net.automaton("S")
    s.location("idle", initial=True)
    s.location("busy", invariant="x <= 3")
    s.location("granted")
    s.edge("idle", "busy", sync="request?", assign="x := 0")
    s.edge("busy", "granted", guard="x >= 1", sync="grant!")
    s.edge("busy", "idle", guard="x >= 1", sync="deny!")
    s.edge("granted", "granted", sync="request?")
    s.edge("busy", "busy", sync="request?")
    c = net.automaton("C")
    c.location("c", initial=True)
    c.edge("c", "c", sync="request!")
    c.edge("c", "c", sync="grant?")
    c.edge("c", "c", sync="deny?")
    return net.build()


def server_plant():
    net = NetworkBuilder("server-plant")
    net.clock("x")
    net.input_channel("request")
    net.output_channel("grant", "deny")
    s = net.automaton("S")
    s.location("idle", initial=True)
    s.location("busy", invariant="x <= 3")
    s.location("granted")
    s.edge("idle", "busy", sync="request?", assign="x := 0")
    s.edge("busy", "granted", guard="x >= 1", sync="grant!")
    s.edge("busy", "idle", guard="x >= 1", sync="deny!")
    s.edge("granted", "granted", sync="request?")
    s.edge("busy", "busy", sync="request?")
    return net.build()


class GrantingPolicy(EagerPolicy):
    """A cooperative server: grants whenever it can."""

    def choose(self, state, options, forced_by):
        grants = [o for o in options if o[0].label == "grant"]
        return super().choose(state, grants or options, forced_by)


class DenyingPolicy(EagerPolicy):
    """An uncooperative (but conforming!) server: always denies."""

    def choose(self, state, options, forced_by):
        denies = [o for o in options if o[0].label == "deny"]
        return super().choose(state, denies or options, forced_by)


def main():
    arena = System(server_arena())
    plant = System(server_plant())
    purpose = parse_query("control: A<> S.granted")

    result = solve_reachability_game(arena, purpose)
    print(f"purpose {purpose}: winning strategy exists = {result.winning}")
    print("  (the server chooses grant/deny itself: not controllable)\n")

    print("falling back to cooperative testing...")
    coop = solve_cooperative(arena, purpose)
    print(f"  goal cooperatively reachable: {coop.goal_reachable}\n")

    for name, policy in [
        ("cooperative server (grants)", GrantingPolicy()),
        ("uncooperative server (denies)", DenyingPolicy()),
    ]:
        imp = SimulatedImplementation(System(server_plant()), policy)
        run = execute_test(coop, plant, imp, max_iterations=30)
        print(f"  {name:32s}: {run}")

    print("\nnote: the uncooperative run is INCONCLUSIVE, not FAIL —")
    print("denying is conforming behaviour; soundness is preserved.")


if __name__ == "__main__":
    main()
