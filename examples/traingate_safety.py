#!/usr/bin/env python
"""Safety games on the train-gate: ``control: A[] φ`` objectives.

The paper's TCTL subset (§2.4) and UPPAAL-TIGA support safety control
objectives alongside reachability.  This example uses the classic
train-gate bridge:

* the *hazard is real*: without control, two trains can be on the bridge
  simultaneously (plain reachability check);
* the *controller can prevent it*: the safety game
  ``control: A[] !(Train0.Cross && Train1.Cross)`` is winning;
* the extracted :class:`SafetyStrategy` keeps runs safe against a random
  adversarial plant (simulated here);
* forcing a crossing (``control: A<> Train0.Cross``) is NOT winnable —
  the tester cannot make an uncontrollable train approach — but remains
  cooperatively testable.

Run:  python examples/traingate_safety.py
"""

import random
from fractions import Fraction

from repro import System, parse_query, solve_cooperative, solve_safety_game
from repro.game import SafetyStrategy, Verdictish, solve_reachability_game
from repro.graph import check_reachable
from repro.models.traingate import (
    crossing_purpose,
    exclusion_purpose,
    traingate_network,
)
from repro.tctl import GoalPredicate


def simulate_safety(system, strategy, seed, steps=30):
    """Random adversarial plant vs the safety strategy."""
    rng = random.Random(seed)
    state = system.initial_concrete()
    for _ in range(steps):
        decision = strategy.decide(state)
        if decision.kind == Verdictish.LOST:
            return False, state
        if decision.kind == Verdictish.FIRE:
            state = system.fire(state, decision.move)
            continue
        horizon = decision.delay
        bound, _ = system.max_delay(state)
        if horizon is None:
            horizon = bound if bound is not None else Fraction(5)
        if bound is not None and horizon > bound:
            horizon = bound
        options = []
        for move in system.moves_from(state.locs, state.vars):
            if move.controllable:
                continue
            interval = system.enabled_interval(state, move)
            if interval is not None and interval.pick() <= horizon:
                options.append((move, interval.pick()))
        if options and rng.random() < 0.7:
            move, at = rng.choice(options)
            state = system.fire(state.delayed(at), move)
        else:
            state = state.delayed(horizon)
    return True, state


def main():
    system = System(traingate_network(2))
    hazard = "E<> Train0.Cross && Train1.Cross"
    goal = GoalPredicate(system, parse_query(hazard).predicate)
    print(f"{hazard}: {bool(check_reachable(system, goal.federation))}"
          " (the hazard exists without control)")

    purpose = exclusion_purpose(2)
    result = solve_safety_game(system, parse_query(purpose), time_limit=120)
    print(f"{purpose}: winning = {result.winning}")
    print(f"  ({result.nodes_explored} symbolic states,"
          f" {result.steps} fixpoint steps,"
          f" {result.solve_seconds * 1000:.0f} ms)\n")

    strategy = SafetyStrategy(result)
    print("simulating the gate strategy against random train behaviour:")
    for seed in range(5):
        ok, final = simulate_safety(system, strategy, seed)
        locs = system.network.location_names(final.locs)
        print(f"  seed {seed}: {'safe throughout' if ok else 'UNSAFE'}  "
              f"(ended in {' '.join(locs[:2])})")

    print()
    reach = crossing_purpose(0)
    res = solve_reachability_game(System(traingate_network(2)),
                                  parse_query(reach), time_limit=120)
    print(f"{reach}: winning = {res.winning}"
          " (cannot force an uncontrollable train to approach)")
    coop = solve_cooperative(System(traingate_network(2)), parse_query(reach),
                             time_limit=120)
    print(f"  cooperatively reachable: {coop.goal_reachable}"
          " -> testable with the cooperative fallback")


if __name__ == "__main__":
    main()
