#!/usr/bin/env python
"""Quickstart: model a tiny uncontrollable system, synthesize a winning
strategy, and use it as a test case.

The system is a coffee machine with timing uncertainty: after a coin it
brews for 2-4 seconds and then — its own choice — dispenses coffee or
tea.  Pressing ``strong`` during brewing forces coffee.  The test purpose
is "the tester can always force a coffee".

Run:  python examples/quickstart.py
"""

from repro import (
    NetworkBuilder,
    Strategy,
    System,
    execute_test,
    parse_query,
    solve_reachability_game,
)
from repro.testing import LazyPolicy, RandomPolicy, SimulatedImplementation


def build_machine():
    """The plant TIOGA: uncontrollable outputs with timing uncertainty."""
    net = NetworkBuilder("coffee")
    net.clock("x")
    net.input_channel("coin", "strong")  # tester moves (controllable)
    net.output_channel("coffee", "tea")  # machine moves (uncontrollable)

    m = net.automaton("M")
    m.location("idle", initial=True)
    m.location("brew", invariant="x <= 4")
    m.location("forced", invariant="x <= 4")
    m.location("cup")

    m.edge("idle", "brew", sync="coin?", assign="x := 0")
    # While brewing, the machine may dispense either drink after 2s...
    m.edge("brew", "cup", guard="x >= 2", sync="coffee!")
    m.edge("brew", "cup", guard="x >= 2", sync="tea!")
    # ...unless the tester presses `strong` early enough.
    m.edge("brew", "forced", guard="x <= 1", sync="strong?")
    m.edge("forced", "cup", guard="x >= 2", sync="coffee!")
    # Input-enabledness: extra presses are ignored.
    m.edge("idle", "idle", sync="strong?")
    m.edge("forced", "forced", sync="strong?")
    m.edge("brew", "brew", sync="coin?")
    m.edge("forced", "forced", sync="coin?")
    m.edge("cup", "cup", sync="coin?")
    m.edge("cup", "cup", sync="strong?")
    return net.build()


def build_arena():
    """Machine composed with a user model (the tester's constraints)."""
    net = NetworkBuilder("coffee-arena")
    net.clock("x", "z")
    net.input_channel("coin", "strong")
    net.output_channel("coffee", "tea")

    m = net.automaton("M")
    m.location("idle", initial=True)
    m.location("brew", invariant="x <= 4")
    m.location("forced", invariant="x <= 4")
    m.location("cup")
    m.edge("idle", "brew", sync="coin?", assign="x := 0")
    m.edge("brew", "cup", guard="x >= 2", sync="coffee!")
    m.edge("brew", "cup", guard="x >= 2", sync="tea!")
    m.edge("brew", "forced", guard="x <= 1", sync="strong?")
    m.edge("forced", "cup", guard="x >= 2", sync="coffee!")
    m.edge("idle", "idle", sync="strong?")
    m.edge("forced", "forced", sync="strong?")
    m.edge("brew", "brew", sync="coin?")
    m.edge("forced", "forced", sync="coin?")
    m.edge("cup", "cup", sync="coin?")
    m.edge("cup", "cup", sync="strong?")

    user = net.automaton("U")
    user.location("u", initial=True)
    user.edge("u", "u", sync="coin!", assign="z := 0")
    user.edge("u", "u", guard="z >= 1", sync="strong!", assign="z := 0")
    for drink in ("coffee", "tea"):
        user.edge("u", "u", sync=f"{drink}?", assign="z := 0")
    return net.build()


def main():
    arena = System(build_arena())
    plant = System(build_machine())

    # 1. State the test purpose and solve the timed game.
    purpose = parse_query("control: A<> M.cup && x >= 2")
    tea_free = parse_query("control: A<> M.forced")
    result = solve_reachability_game(arena, tea_free)
    print(f"purpose {tea_free}: winning = {result.winning}")

    result = solve_reachability_game(arena, purpose)
    print(f"purpose {purpose}: winning = {result.winning}")

    # 2. The winning strategy IS the test case (paper §3.2).
    strategy = Strategy(solve_reachability_game(arena, tea_free))
    print(f"\nwinning strategy over {strategy.size} symbolic states:")
    print(strategy.describe(max_nodes=4))

    # 3. Execute it against implementations (paper Algorithm 3.1).
    print("\ntest executions:")
    for name, policy in [
        ("lazy machine", LazyPolicy()),
        ("random machine", RandomPolicy(7)),
    ]:
        imp = SimulatedImplementation(System(build_machine()), policy)
        run = execute_test(strategy, plant, imp)
        print(f"  {name:16s}: {run}")


if __name__ == "__main__":
    main()
