#!/usr/bin/env python
"""Conformance testing and fault detection with winning strategies.

The full workflow of paper §3 plus the future-work item 3 experiment:

1. synthesize the winning strategy for ``control: A<> IUT.Bright``;
2. validate the plant model (determinism, input-enabledness — §2.2);
3. run the strategy test against a pool of mutated implementations under
   several output-timing policies and report the detections.

Run:  python examples/conformance_testing.py
"""

from repro import Strategy, System, execute_test, parse_query, validate_plant
from repro.game import TwoPhaseSolver
from repro.models.smartlight import smartlight_network, smartlight_plant
from repro.testing import (
    EagerPolicy,
    LazyPolicy,
    QuiescentPolicy,
    RandomPolicy,
    SimulatedImplementation,
)
from repro.testing.mutants import (
    drop_edge,
    retarget_edge,
    shift_guard_constant,
    swap_output_channel,
    widen_invariant,
)
from repro.testing.trace import FAIL

POLICIES = [
    ("eager", EagerPolicy),
    ("lazy", LazyPolicy),
    ("quiescent", QuiescentPolicy),
    ("random", lambda: RandomPolicy(3)),
]


def mutants():
    plant = smartlight_plant
    yield ("correct implementation", plant(), False)
    yield (
        "L1 answers bright! instead of dim!",
        swap_output_channel(plant(), "bright", automaton="IUT",
                            source="L1", sync="dim!"),
        True,
    )
    yield (
        "L6 may answer 2 time units late",
        widen_invariant(plant(), "IUT", "L6", +2),
        True,
    )
    yield (
        "L6 never answers (dropped edge)",
        drop_edge(plant(), automaton="IUT", source="L6", sync="bright!"),
        True,
    )
    yield (
        "L2 late (off the tested path)",
        widen_invariant(plant(), "IUT", "L2", +2),
        False,
    )
    yield (
        "idle threshold off by one (boundary fault)",
        shift_guard_constant(plant(), -1, automaton="IUT",
                             source="Off", target="L5"),
        False,
    )
    yield (
        "bright! but turns Off (post-goal fault)",
        retarget_edge(plant(), "Off", automaton="IUT",
                      source="L6", sync="bright!"),
        False,
    )


def main():
    arena = System(smartlight_network())
    plant = System(smartlight_plant())

    print("validating the plant model (paper §2.2 restrictions)...")
    report = validate_plant(plant)
    print(f"  {report}\n")

    print("synthesizing the winning strategy for control: A<> IUT.Bright...")
    result = TwoPhaseSolver(arena, parse_query("control: A<> IUT.Bright")).solve()
    strategy = Strategy(result)
    print(f"  {strategy.size} symbolic states, "
          f"{result.nodes_explored} explored, {result.steps} fixpoint steps\n")

    print("fault-detection sweep (strategy test vs mutant pool):")
    caught_total = expected_total = 0
    for name, network, expected_caught in mutants():
        verdicts = []
        caught = False
        witness = ""
        for policy_name, policy_factory in POLICIES:
            imp = SimulatedImplementation(System(network), policy_factory())
            run = execute_test(strategy, plant, imp)
            verdicts.append(f"{policy_name}:{run.verdict}")
            if run.verdict == FAIL and not caught:
                caught = True
                witness = f"  failing trace: {run.trace} — {run.reason}"
        mark = "CAUGHT " if caught else "missed "
        expect = "(expected)" if caught == expected_caught else "(UNEXPECTED)"
        print(f"  {mark}{expect} {name}")
        print(f"      {'  '.join(verdicts)}")
        if witness:
            print(witness)
        caught_total += caught
        expected_total += expected_caught
    print(f"\nmutation score: {caught_total} caught; "
          f"all {expected_total} on-path faults detected, "
          f"off-path/conforming variants correctly passed")


if __name__ == "__main__":
    main()
