#!/usr/bin/env python
"""The Leader Election Protocol case study — regenerates the paper's
Table 1 (strategy-generation time and memory for TP1/TP2/TP3, n nodes).

By default runs the on-the-fly solver over n = 3..8 plus the exhaustive
(two-phase) solver over a smaller range with a time budget; cells over
budget print as "/" exactly like the paper's out-of-memory cells.

Run:  python examples/lep_case_study.py [--full] [--budget SECONDS]

``--full`` extends the exhaustive sweep to n = 3..8 (expect the larger n
to take minutes or hit the budget — that blow-up IS the result).
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.table1 import (
    generate_table,
    render_paper_table,
    render_table,
    shape_checks,
)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run the exhaustive solver on the full 3..8 range")
    parser.add_argument("--budget", type=float, default=60.0,
                        help="per-cell time budget in seconds (default 60)")
    args = parser.parse_args()

    print(render_paper_table())
    print()

    otf_sizes = [3, 4, 5, 6, 7, 8]
    print("running on-the-fly solver (SOTFTG analogue), this takes ~1 min...")
    otf = generate_table(otf_sizes, on_the_fly=True, time_limit=args.budget)
    print(render_table(
        otf, f"Reproduction, on-the-fly solver (budget {args.budget:.0f}s/cell)"
    ))
    print()

    full_sizes = otf_sizes if args.full else [3, 4, 5]
    print(f"running exhaustive solver on n={full_sizes} "
          f"(full winning sets; the paper-style blow-up)...")
    full = generate_table(full_sizes, on_the_fly=False, time_limit=args.budget)
    print(render_table(
        full, f"Reproduction, exhaustive solver (budget {args.budget:.0f}s/cell)"
    ))

    print("\nshape checks (the qualitative Table 1 claims):")
    failures = shape_checks(otf)
    if failures:
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print("  ok: all purposes winning on every solved cell")
    print("  ok: TP2/TP3 substantially harder than TP1 at every n")
    print("  ok: TP2 work grows monotonically (super-linearly) with n")
    print("\nnode counts (explored symbolic states), on-the-fly:")
    for tp in ("TP1", "TP2", "TP3"):
        counts = ", ".join(
            f"n={n}: {otf[tp][n].nodes if otf[tp][n].nodes is not None else '/'}"
            for n in otf_sizes
        )
        print(f"  {tp}: {counts}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
