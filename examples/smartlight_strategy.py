#!/usr/bin/env python
"""The paper's running example end to end (Fig. 2, 3, and 5).

* builds the Smart Light plant TIOGA (Fig. 2) and user TA (Fig. 3);
* checks the test purpose ``control: A<> IUT.Bright`` with both solver
  variants and synthesizes the winning strategy — the analogue of the
  UPPAAL-TIGA output shown in the paper's Fig. 5;
* prints the strategy in Fig. 5 style;
* executes it as a test case against conforming implementations with
  different output policies, showing the timed traces.

Run:  python examples/smartlight_strategy.py
"""

from repro import Strategy, System, execute_test, parse_query
from repro.game import OnTheFlySolver, TwoPhaseSolver
from repro.models.smartlight import smartlight_network, smartlight_plant
from repro.testing import (
    EagerPolicy,
    LazyPolicy,
    QuiescentPolicy,
    RandomPolicy,
    SimulatedImplementation,
)
from repro.util import stopwatch

PURPOSE = "control: A<> IUT.Bright"


def main():
    arena = System(smartlight_network())
    plant = System(smartlight_plant())
    query = parse_query(PURPOSE)

    print(f"model: Smart Light (Fig. 2/3), Tidle=20, Tsw=4, Tp<=2, Treact=1")
    print(f"test purpose: {PURPOSE}\n")

    for name, solver_cls in (("two-phase", TwoPhaseSolver),
                             ("on-the-fly", OnTheFlySolver)):
        with stopwatch() as timer:
            result = solver_cls(System(smartlight_network()), query).solve()
        print(
            f"{name:11s}: winning={result.winning}"
            f"  symbolic states={result.nodes_explored}"
            f"  fixpoint steps={result.steps}"
            f"  time={timer.seconds * 1000:.1f} ms"
        )

    result = TwoPhaseSolver(arena, query).solve()
    strategy = Strategy(result)

    print(f"\nwinning strategy ({strategy.size} symbolic states), Fig. 5 style:")
    print("-" * 72)
    print(strategy.describe())
    print("-" * 72)

    print("\ntest executions against conforming implementations:")
    policies = [
        ("eager (answers asap)", EagerPolicy()),
        ("lazy (answers at the deadline)", LazyPolicy()),
        ("quiescent (silent unless forced)", QuiescentPolicy()),
        ("random seed 1", RandomPolicy(1)),
        ("random seed 7", RandomPolicy(7)),
    ]
    for name, policy in policies:
        imp = SimulatedImplementation(System(smartlight_plant()), policy)
        run = execute_test(strategy, plant, imp)
        print(f"  {name:34s} {run}")


if __name__ == "__main__":
    main()
